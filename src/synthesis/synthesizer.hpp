// The synthesis engine of Section 7: reduce "does problem P admit a normal
// form A' o S_k with window shape h x w?" to SAT over per-tile label
// variables, and extract the finite function A' from the model.
//
// Two solving regimes share one clause generator:
//  * Fresh per-instance: synthesizeForShape builds a throwaway solver for
//    one (k, shape) -- the seed behaviour, kept as the differential-testing
//    reference and for callers that want instance isolation.
//  * Incremental: IncrementalSynthesizer keeps ONE live solver per problem
//    (per tile-set family). Each (k, shape) instance is encoded as an
//    assumption-gated clause group (sat/cnf.hpp ClauseGroup); climbing the
//    ladder retires the previous group and solves under the new group's
//    activation literal, so the solver, its variable order, and everything
//    it learnt persist across the ladder instead of being re-built per
//    instance. Budget-staged deepening (solve cheap, re-solve harder only
//    if Unknown) resumes from the learnt state rather than from scratch --
//    that is where the measured >= 2x conflict savings of bench_sat come
//    from.
// synthesize() picks the regime via SynthesisOptions::incremental, whose
// default honours the LCLGRID_INCREMENTAL_SAT environment toggle ("0"
// forces the fresh path; anything else, or unset, keeps incremental on).
//
// Thread-safety contract: synthesize / synthesizeForShape are re-entrant --
// every solver, tile set and constraint system is a local; the only reads
// of the problem go through GridLcl's const interface (itself safe, see
// lcl/grid_lcl.hpp). Concurrent synthesis of different problems (or the
// same problem twice) from engine pool threads needs no locking. An
// IncrementalSynthesizer wraps one sat::Solver and inherits its contract:
// it must be owned by a single thread at a time (the engine's sweep driver
// constructs one per pool task), while distinct instances never share
// state and run concurrently without synchronisation.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "lcl/grid_lcl.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "synthesis/constraints.hpp"
#include "tiles/tile.hpp"

namespace lclgrid::synthesis {

/// The finite function A': one output label per tile. Together with k and
/// the window shape this fully determines the constant-time component of the
/// normal form (the anchors are supplied by S_k at run time).
struct SynthesizedRule {
  int k = 0;
  tiles::TileShape shape;
  tiles::TileSet tileSet{tiles::TileShape{1, 1}, 1, {}};
  std::vector<int> labelOf;  // indexed by tile index
};

struct SynthesisAttempt {
  bool success = false;
  std::optional<SynthesizedRule> rule;
  // Diagnostics for the reproduction tables.
  int k = 0;
  tiles::TileShape shape;
  long long tileCount = 0;
  long long clauseCount = 0;
  long long satConflicts = 0;
  double seconds = 0.0;
  std::string failureReason;  // "unsat", "budget", "window too large"
};

/// One synthesis attempt at fixed k and window shape, on a fresh throwaway
/// solver (the per-instance reference regime).
SynthesisAttempt synthesizeForShape(const GridLcl& lcl, int k,
                                    tiles::TileShape shape,
                                    std::int64_t satConflictBudget = -1);

/// Default for SynthesisOptions::incremental: true unless the environment
/// variable LCLGRID_INCREMENTAL_SAT is set to "0" (the CI matrix runs the
/// suite both ways).
bool incrementalSatDefault();

struct SynthesisOptions {
  int maxK = 3;
  std::int64_t satConflictBudget = 2'000'000;
  /// Extra window shapes to try per k, beyond the defaults.
  bool tryWiderShapes = true;
  /// Run the ladder on one live assumption-based solver (clause groups per
  /// (k, shape), learnt clauses retained) instead of a fresh solver per
  /// instance. Verdicts are identical either way (property-tested over the
  /// whole registry); only the solving work differs.
  bool incremental = incrementalSatDefault();
};

struct SynthesisResult {
  bool success = false;
  std::optional<SynthesizedRule> rule;
  std::vector<SynthesisAttempt> attempts;  // in the order tried
};

/// The incremental regime: one live solver for a whole synthesis ladder.
/// See the header comment for the design; the per-call semantics of
/// attemptShape mirror synthesizeForShape exactly (same attempt fields,
/// same failureReason strings), with satConflicts counting only the
/// conflicts this attempt added on the shared solver.
class IncrementalSynthesizer {
 public:
  /// Keeps a reference to `lcl`; the problem must outlive the synthesizer.
  explicit IncrementalSynthesizer(const GridLcl& lcl);

  /// Encodes (k, shape) as a new activation-gated clause group, retires the
  /// previous instance's group, and solves under the new activation literal.
  SynthesisAttempt attemptShape(int k, tiles::TileShape shape,
                                std::int64_t satConflictBudget = -1);

  /// Re-solves the most recent attemptShape instance under a new conflict
  /// budget WITHOUT re-encoding: the solver resumes from everything it
  /// learnt in the earlier budgeted calls on this instance. This is the
  /// budget-staged deepening loop ("sat budget exhausted" -> raise budget
  /// -> resolve) that a fresh-per-instance regime can only emulate by
  /// re-encoding and re-searching from zero. Requires a prior attemptShape
  /// whose window was encodable.
  SynthesisAttempt resolveActive(std::int64_t satConflictBudget = -1);

  /// The full Section 7 ladder on the live solver (options.incremental is
  /// ignored here -- this IS the incremental path).
  SynthesisResult run(const SynthesisOptions& options);

  /// The live solver, for statistics (cumulative across all attempts).
  const sat::Solver& solver() const { return solver_; }

 private:
  struct ActiveInstance {
    int k = 0;
    tiles::TileShape shape;
    tiles::TileSet tileSet{tiles::TileShape{1, 1}, 1, {}};
    std::vector<sat::DomainVar> label;
    long long clauseCount = 0;
    bool encodable = false;
  };

  SynthesisAttempt solveActive(
      std::int64_t satConflictBudget,
      std::chrono::steady_clock::time_point startTime);

  const GridLcl& lcl_;
  sat::Solver solver_;
  sat::ClauseGroup activeGroup_;  // group of the most recent attempt
  ActiveInstance active_;
};

/// Window shapes tried for a given k, largest-window-first within the 63-bit
/// encodable limits (the paper's choices 3x2 for k=1 and 7x5 for k=3 are the
/// first candidates of their k).
std::vector<tiles::TileShape> candidateShapes(const GridLcl& lcl, int k,
                                              bool wider);

/// The full loop of Section 7: k = 1, 2, ... until synthesis succeeds or
/// the budget is exhausted. This is the one-sided oracle -- for Theta(n)
/// problems it reports failure at the budget rather than diverging.
SynthesisResult synthesize(const GridLcl& lcl, const SynthesisOptions& options = {});

}  // namespace lclgrid::synthesis
