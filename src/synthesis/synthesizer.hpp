// The synthesis engine of Section 7: reduce "does problem P admit a normal
// form A' o S_k with window shape h x w?" to SAT over per-tile label
// variables, and extract the finite function A' from the model.
//
// Thread-safety contract: synthesize / synthesizeForShape are re-entrant --
// every solver, tile set and constraint system is a local; the only reads
// of the problem go through GridLcl's const interface (itself safe, see
// lcl/grid_lcl.hpp). Concurrent synthesis of different problems (or the
// same problem twice) from engine pool threads needs no locking.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lcl/grid_lcl.hpp"
#include "synthesis/constraints.hpp"
#include "tiles/tile.hpp"

namespace lclgrid::synthesis {

/// The finite function A': one output label per tile. Together with k and
/// the window shape this fully determines the constant-time component of the
/// normal form (the anchors are supplied by S_k at run time).
struct SynthesizedRule {
  int k = 0;
  tiles::TileShape shape;
  tiles::TileSet tileSet{tiles::TileShape{1, 1}, 1, {}};
  std::vector<int> labelOf;  // indexed by tile index
};

struct SynthesisAttempt {
  bool success = false;
  std::optional<SynthesizedRule> rule;
  // Diagnostics for the reproduction tables.
  int k = 0;
  tiles::TileShape shape;
  long long tileCount = 0;
  long long clauseCount = 0;
  long long satConflicts = 0;
  double seconds = 0.0;
  std::string failureReason;  // "unsat", "budget", "window too large"
};

/// One synthesis attempt at fixed k and window shape.
SynthesisAttempt synthesizeForShape(const GridLcl& lcl, int k,
                                    tiles::TileShape shape,
                                    std::int64_t satConflictBudget = -1);

struct SynthesisOptions {
  int maxK = 3;
  std::int64_t satConflictBudget = 2'000'000;
  /// Extra window shapes to try per k, beyond the defaults.
  bool tryWiderShapes = true;
};

struct SynthesisResult {
  bool success = false;
  std::optional<SynthesizedRule> rule;
  std::vector<SynthesisAttempt> attempts;  // in the order tried
};

/// Window shapes tried for a given k, largest-window-first within the 63-bit
/// encodable limits (the paper's choices 3x2 for k=1 and 7x5 for k=3 are the
/// first candidates of their k).
std::vector<tiles::TileShape> candidateShapes(const GridLcl& lcl, int k,
                                              bool wider);

/// The full loop of Section 7: k = 1, 2, ... until synthesis succeeds or
/// the budget is exhausted. This is the one-sided oracle -- for Theta(n)
/// problems it reports failure at the budget rather than diverging.
SynthesisResult synthesize(const GridLcl& lcl, const SynthesisOptions& options = {});

}  // namespace lclgrid::synthesis
