// Execution of the normal form A' o S_k (Figure 1): the problem-independent
// component S_k computes a maximal independent set of G^(k) (the anchors) in
// O(log* n) rounds; the problem-specific finite function A' then maps every
// node's anchor window to its output label in O(k) further rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/torus2d.hpp"
#include "synthesis/synthesizer.hpp"

namespace lclgrid::synthesis {

struct NormalFormRun {
  bool solved = false;
  std::vector<int> labels;
  int rounds = 0;          // total LOCAL rounds (S_k + A')
  int misRounds = 0;       // rounds spent in S_k
  int localRadius = 0;     // radius of the A' window read
  std::string failure;     // set when a window was not in the tile set
};

class NormalFormAlgorithm {
 public:
  explicit NormalFormAlgorithm(SynthesizedRule rule);

  const SynthesizedRule& rule() const { return rule_; }

  /// Smallest torus the algorithm is specified for: windows and their
  /// super-windows must not wrap around.
  int minimumN() const;

  /// Runs A' o S_k on the torus with the given identifiers.
  NormalFormRun execute(const Torus2D& torus,
                        const std::vector<std::uint64_t>& ids) const;

  /// Runs A' on an externally supplied anchor set (used by tests to check
  /// the A'-is-deterministic-given-anchors property).
  NormalFormRun executeOnAnchors(const Torus2D& torus,
                                 const std::vector<std::uint8_t>& anchors) const;

 private:
  std::uint64_t windowAt(const Torus2D& torus,
                         const std::vector<std::uint8_t>& anchors,
                         int node) const;

  SynthesizedRule rule_;
};

}  // namespace lclgrid::synthesis
