#include "synthesis/oracle.hpp"

#include "grid/torus2d.hpp"
#include "lcl/global_solver.hpp"

namespace lclgrid::synthesis {

std::string gridComplexityName(GridComplexity c) {
  switch (c) {
    case GridComplexity::Constant: return "O(1)";
    case GridComplexity::LogStar: return "Theta(log* n)";
    case GridComplexity::ConjecturedGlobal: return "global (conjectured)";
    case GridComplexity::UnsolvableSomeN: return "global (unsolvable for some n)";
  }
  return "?";
}

OracleReport classifyOnGrid(const GridLcl& lcl, const OracleOptions& options) {
  OracleReport report;

  // Feasibility probe first: it both detects parity-obstructed problems and
  // provides evidence for the "global" verdict. The incremental regime
  // holds every probed size on one live solver (FeasibilityProber);
  // verdicts are identical to the fresh-per-size reference path, which is
  // kept for the differential suite and the LCLGRID_INCREMENTAL_SAT=0
  // escape hatch.
  bool unsolvableSomewhere = false;
  std::optional<FeasibilityProber> prober;
  if (options.synthesis.incremental) prober.emplace(lcl);
  for (int n : options.probeSizes) {
    GlobalSolveResult probe;
    if (prober) {
      probe = prober->probe(n, options.probeConflictBudget);
    } else {
      Torus2D torus(n);
      probe = solveGlobally(torus, lcl, 0, options.probeConflictBudget);
    }
    // An undecided probe (budget exhausted) is reported as feasible=true in
    // the sense of "not proven unsolvable".
    bool feasible = probe.feasible || !probe.decided;
    report.feasibility.emplace_back(n, feasible);
    if (!feasible) unsolvableSomewhere = true;
  }

  // O(1) on toroidal grids <=> a constant labelling is feasible (Section 6).
  if (lcl.hasTrivialSolution()) {
    report.complexity = GridComplexity::Constant;
    report.trivialLabel = lcl.trivialLabel();
    return report;
  }

  SynthesisResult synthesis = synthesize(lcl, options.synthesis);
  report.attempts = std::move(synthesis.attempts);
  if (synthesis.success) {
    report.complexity = GridComplexity::LogStar;
    report.rule = std::move(synthesis.rule);
    return report;
  }

  report.complexity = unsolvableSomewhere ? GridComplexity::UnsolvableSomeN
                                          : GridComplexity::ConjecturedGlobal;
  return report;
}

}  // namespace lclgrid::synthesis
