#include "synthesis/constraints.hpp"

#include <stdexcept>
#include <unordered_set>

#include "tiles/enumerator.hpp"

namespace lclgrid::synthesis {

namespace {

struct PairHash {
  std::size_t operator()(const TilePair& p) const {
    return std::hash<long long>()(
        (static_cast<long long>(p.a) << 32) ^ static_cast<long long>(p.b));
  }
};

struct CrossHash {
  std::size_t operator()(const TileCross& c) const {
    std::size_t h = std::hash<int>()(c.centre);
    auto mix = [&h](int v) {
      h ^= std::hash<int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(c.north);
    mix(c.east);
    mix(c.south);
    mix(c.west);
    return h;
  }
};

}  // namespace

ConstraintSystem buildConstraints(const GridLcl& lcl,
                                  const tiles::TileSet& tileSet) {
  const tiles::TileShape shape = tileSet.shape();
  const int k = tileSet.k();
  ConstraintSystem system;
  system.edgeDecomposable = lcl.isEdgeDecomposable();

  auto requireTile = [&](std::uint64_t bits) {
    int index = tileSet.indexOf(bits);
    if (index < 0) {
      throw std::logic_error(
          "buildConstraints: sub-window is not a valid tile (heredity bug)");
    }
    return index;
  };

  if (system.edgeDecomposable) {
    // Horizontal edges: enumerate h x (w+1) windows; the west tile is
    // columns [0, w), the east tile columns [1, w+1).
    {
      tiles::TileShape wide{shape.height, shape.width + 1};
      if (wide.cells() > 63) {
        throw std::invalid_argument("buildConstraints: overlap window > 63 cells");
      }
      auto wideTiles = tiles::enumerateTiles(k, wide.height, wide.width);
      system.overlapPatterns += wideTiles.size();
      std::unordered_set<TilePair, PairHash> seen;
      for (int i = 0; i < wideTiles.size(); ++i) {
        std::uint64_t bits = wideTiles.pattern(i);
        TilePair pair{requireTile(tiles::subPattern(bits, wide, 0, 0, shape)),
                      requireTile(tiles::subPattern(bits, wide, 0, 1, shape))};
        if (seen.insert(pair).second) system.horizontal.push_back(pair);
      }
    }
    // Vertical edges: (h+1) x w windows; row 0 is north, so the top tile is
    // the NORTH node and the bottom tile (rows [1, h+1)) the SOUTH node.
    {
      tiles::TileShape tall{shape.height + 1, shape.width};
      if (tall.cells() > 63) {
        throw std::invalid_argument("buildConstraints: overlap window > 63 cells");
      }
      auto tallTiles = tiles::enumerateTiles(k, tall.height, tall.width);
      system.overlapPatterns += tallTiles.size();
      std::unordered_set<TilePair, PairHash> seen;
      for (int i = 0; i < tallTiles.size(); ++i) {
        std::uint64_t bits = tallTiles.pattern(i);
        int northTile = requireTile(tiles::subPattern(bits, tall, 0, 0, shape));
        int southTile = requireTile(tiles::subPattern(bits, tall, 1, 0, shape));
        TilePair pair{southTile, northTile};  // a south of b
        if (seen.insert(pair).second) system.vertical.push_back(pair);
      }
    }
    return system;
  }

  // General path: (h+2) x (w+2) super-windows. The centre node's window has
  // its top-left at (1, 1) inside the super-window; moving one step in a
  // compass direction shifts the window by one cell (north = up = row - 1).
  tiles::TileShape super{shape.height + 2, shape.width + 2};
  if (super.cells() > 63) {
    throw std::invalid_argument("buildConstraints: super window > 63 cells");
  }
  auto superTiles = tiles::enumerateTiles(k, super.height, super.width);
  system.overlapPatterns += superTiles.size();
  std::unordered_set<TileCross, CrossHash> seen;
  for (int i = 0; i < superTiles.size(); ++i) {
    std::uint64_t bits = superTiles.pattern(i);
    TileCross cross;
    cross.centre = requireTile(tiles::subPattern(bits, super, 1, 1, shape));
    cross.north = requireTile(tiles::subPattern(bits, super, 0, 1, shape));
    cross.south = requireTile(tiles::subPattern(bits, super, 2, 1, shape));
    cross.east = requireTile(tiles::subPattern(bits, super, 1, 2, shape));
    cross.west = requireTile(tiles::subPattern(bits, super, 1, 0, shape));
    if (seen.insert(cross).second) system.crosses.push_back(cross);
  }
  return system;
}

}  // namespace lclgrid::synthesis
