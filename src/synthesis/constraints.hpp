// Constraint generation for the synthesis CSP (Section 7): the synthesized
// object A' assigns one output label to every tile; the LCL's constraints
// become constraints between tiles that can co-occur around a node.
//
// Two generators:
//  * Edge-decomposable problems (e.g. vertex colouring) use the paper's
//    neighbourhood-graph edges: (h)x(w+1) overlap windows give horizontal
//    tile pairs, (h+1)x(w) windows give vertical pairs.
//  * General cross predicates use (h+2)x(w+2) super-windows whose five
//    centred sub-windows are the tiles of a node and its four neighbours.
//
// Tile-of-a-node convention: node v sits at cell (rowC, colC) of its own
// window, rowC = (h-1)/2, colC = (w-1)/2; cell (r, c) of the window is the
// torus node v + (c - colC) east + (rowC - r) north (row 0 is northmost).
#pragma once

#include <cstdint>
#include <vector>

#include "lcl/grid_lcl.hpp"
#include "tiles/tile.hpp"

namespace lclgrid::synthesis {

/// A binary constraint: tiles (a, b) adjacent horizontally (a west of b) or
/// vertically (a south of b).
struct TilePair {
  int a = 0;
  int b = 0;
  bool operator==(const TilePair&) const = default;
};

/// A 5-ary constraint: the tiles of a node and its four neighbours.
struct TileCross {
  int centre = 0;
  int north = 0;
  int east = 0;
  int south = 0;
  int west = 0;
  bool operator==(const TileCross&) const = default;
};

struct ConstraintSystem {
  // Exactly one of the two lists is populated, per the problem type.
  bool edgeDecomposable = false;
  std::vector<TilePair> horizontal;  // a west of b
  std::vector<TilePair> vertical;    // a south of b
  std::vector<TileCross> crosses;
  long long overlapPatterns = 0;  // enumeration size diagnostics
};

/// Builds the constraint system for the given problem over the tile set.
/// Throws if a required overlap/super window would exceed 63 cells.
ConstraintSystem buildConstraints(const GridLcl& lcl,
                                  const tiles::TileSet& tileSet);

/// Centre cell of a window of the given shape.
inline int centreRow(const tiles::TileShape& s) { return (s.height - 1) / 2; }
inline int centreCol(const tiles::TileShape& s) { return (s.width - 1) / 2; }

}  // namespace lclgrid::synthesis
