#include "synthesis/normal_form.hpp"

#include <algorithm>
#include <stdexcept>

#include "local/graph_view.hpp"
#include "local/mis.hpp"
#include "tiles/enumerator.hpp"

namespace lclgrid::synthesis {

NormalFormAlgorithm::NormalFormAlgorithm(SynthesizedRule rule)
    : rule_(std::move(rule)) {
  if (rule_.labelOf.size() != static_cast<std::size_t>(rule_.tileSet.size())) {
    throw std::invalid_argument("NormalFormAlgorithm: rule size mismatch");
  }
}

int NormalFormAlgorithm::minimumN() const {
  // Windows (plus the super-window margin of 1) and the anchor frame
  // (radius k) must embed injectively into the torus.
  int span = std::max(rule_.shape.height, rule_.shape.width) + 2;
  return span + 2 * rule_.k + 2;
}

std::uint64_t NormalFormAlgorithm::windowAt(
    const Torus2D& torus, const std::vector<std::uint8_t>& anchors,
    int node) const {
  const tiles::TileShape& shape = rule_.shape;
  const int rowC = centreRow(shape);
  const int colC = centreCol(shape);
  std::uint64_t bits = 0;
  for (int r = 0; r < shape.height; ++r) {
    for (int c = 0; c < shape.width; ++c) {
      int cell = torus.shift(node, c - colC, rowC - r);
      if (anchors[static_cast<std::size_t>(cell)]) {
        bits |= 1ULL << tiles::bitIndex(shape, r, c);
      }
    }
  }
  return bits;
}

NormalFormRun NormalFormAlgorithm::executeOnAnchors(
    const Torus2D& torus, const std::vector<std::uint8_t>& anchors) const {
  NormalFormRun run;
  const tiles::TileShape& shape = rule_.shape;
  // Radius of the window read, measured from the centre cell.
  run.localRadius =
      std::max(centreRow(shape), shape.height - 1 - centreRow(shape)) +
      std::max(centreCol(shape), shape.width - 1 - centreCol(shape));
  run.rounds = run.localRadius;

  run.labels.assign(static_cast<std::size_t>(torus.size()), -1);
  for (int v = 0; v < torus.size(); ++v) {
    std::uint64_t window = windowAt(torus, anchors, v);
    int tile = rule_.tileSet.indexOf(window);
    if (tile < 0) {
      run.failure = "anchor window not in tile set at node " +
                    std::to_string(v) + ":\n" +
                    tiles::renderPattern(window, shape);
      return run;
    }
    run.labels[static_cast<std::size_t>(v)] =
        rule_.labelOf[static_cast<std::size_t>(tile)];
  }
  run.solved = true;
  return run;
}

NormalFormRun NormalFormAlgorithm::execute(
    const Torus2D& torus, const std::vector<std::uint64_t>& ids) const {
  if (torus.n() < minimumN()) {
    throw std::invalid_argument(
        "NormalFormAlgorithm: torus below the algorithm's minimum n");
  }
  auto view = local::l1PowerView(torus, rule_.k);
  auto mis = local::computeMis(view, ids);

  std::vector<std::uint8_t> anchors(mis.inSet.begin(), mis.inSet.end());
  NormalFormRun run = executeOnAnchors(torus, anchors);
  run.misRounds = mis.gridRounds;
  run.rounds += mis.gridRounds;
  return run;
}

}  // namespace lclgrid::synthesis
