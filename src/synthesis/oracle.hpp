// The one-sided complexity oracle of Section 7. On toroidal grids:
//  * a problem is O(1) iff a constant labelling is feasible (triviality);
//  * if synthesis succeeds for some k, the problem is Theta(log* n) and we
//    hold an asymptotically optimal algorithm;
//  * if synthesis fails up to the budget, the problem is *conjectured*
//    global -- by Theorem 3 no procedure can decide this, so a budgeted
//    failure is the honest finite rendering of the semi-decision procedure.
// A feasibility probe on small tori additionally distinguishes "global but
// solvable" from "no solution exists for infinitely many n" (both are
// Theta(n)-class per Section 3).
//
// Thread-safety contract: classifyOnGrid is re-entrant -- it composes the
// feasibility probes and synthesize, both of which keep all mutable state
// local (see lcl/global_solver.hpp, synthesis/synthesizer.hpp,
// sat/solver.hpp). In the incremental regime (the default; toggled by
// OracleOptions::synthesis.incremental / LCLGRID_INCREMENTAL_SAT) each
// classification owns one live FeasibilityProber and one
// IncrementalSynthesizer for its whole ladder -- one solver per task,
// never shared across pool threads. The engine's FamilySweep runs one
// classification per pool thread with no shared locks on the hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lcl/grid_lcl.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

namespace lclgrid::synthesis {

enum class GridComplexity {
  Constant,            // O(1): constant labelling feasible
  LogStar,             // Theta(log* n): synthesis succeeded
  ConjecturedGlobal,   // no synthesis up to budget; solvable on probed tori
  UnsolvableSomeN,     // no solution for some probed n (=> Theta(n) family)
};

std::string gridComplexityName(GridComplexity c);

struct OracleReport {
  GridComplexity complexity = GridComplexity::ConjecturedGlobal;
  int trivialLabel = -1;                   // for Constant
  std::optional<SynthesizedRule> rule;     // for LogStar
  std::vector<SynthesisAttempt> attempts;  // everything that was tried
  // Feasibility probe results: (n, feasible) for the probed torus sizes.
  std::vector<std::pair<int, bool>> feasibility;
};

struct OracleOptions {
  SynthesisOptions synthesis;
  /// Torus sizes for the feasibility probe (defaults chosen to include odd
  /// and even n, which separate the parity-obstructed problems).
  std::vector<int> probeSizes = {4, 5, 6, 7};
  /// SAT conflict budget per probe. Counting-style UNSAT instances (e.g.
  /// in-degree sum obstructions) are exponentially hard for resolution;
  /// an undecided probe is treated as "not proven unsolvable".
  std::int64_t probeConflictBudget = 300'000;
};

/// Runs the full oracle pipeline on a problem.
OracleReport classifyOnGrid(const GridLcl& lcl, const OracleOptions& options = {});

}  // namespace lclgrid::synthesis
