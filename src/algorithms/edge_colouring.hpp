// The (2d+1)-edge-colouring algorithm of Section 10 (Theorem 15): for every
// fixed d, d-dimensional toroidal grids can be edge-coloured with 2d+1
// colours in Theta(log* n) rounds; 2d colours are impossible for odd n
// (Theorem 21).
//
// Pipeline (following the paper):
//  1. per dimension q, a j,k-independent set M_q (Definition 18): every node
//     has an M_q node within j on its q-row, and the radius-k L-infinity
//     balls of M_q are pairwise disjoint. Construction: per-row MIS of a
//     large distance, then the phase-wise eastward moving procedure ordered
//     by a distance-4k colouring (Lemma 19/20);
//  2. each M_q node marks one edge of its own q-row inside its radius-k
//     ball, avoiding adjacency with previously marked edges (possible since
//     2k > 4(d-1));
//  3. marked edges get the extra colour 2d; every q-row is cut by its marked
//     edges into bounded segments whose edges alternate colours 2q, 2q+1.
//
// Edges are indexed as (node, axis) for the edge from `node` towards the
// positive direction of `axis`: edge id = node * d + axis.
//
// The paper's worst-case parameters (k = 2d, row spacing 2(4k+1)^d) make
// direct simulation astronomically large; the implementation exposes them
// as parameters with practical defaults and verifies every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/torusd.hpp"

namespace lclgrid::algorithms {

struct EdgeColouringParams {
  int k = 0;           // ball radius; 0 = auto (2d-1, retry 2d)
  int rowSpacing = 0;  // per-row MIS distance; 0 = auto
};

struct EdgeColouringResult {
  bool solved = false;
  std::vector<int> colour;  // edge id -> colour in {0, ..., 2d}
  int rounds = 0;
  int k = 0;
  int rowSpacing = 0;
  int palette = 0;  // 2d+1
  std::string failure;
};

/// One attempt with explicit parameters.
EdgeColouringResult edgeColouringWithParams(
    const TorusD& torus, const std::vector<std::uint64_t>& ids,
    const EdgeColouringParams& params);

/// Retry ladder over (k, rowSpacing).
EdgeColouringResult edgeColouringGrid(const TorusD& torus,
                                      const std::vector<std::uint64_t>& ids);

/// Proper-edge-colouring check: all 2d edges incident to each node are
/// pairwise distinct and within the palette.
bool isProperEdgeColouringD(const TorusD& torus,
                            const std::vector<int>& colour, int palette);

/// Edge id helpers.
inline long long edgeId(const TorusD& torus, long long node, int axis) {
  return node * torus.dims() + axis;
}

}  // namespace lclgrid::algorithms
