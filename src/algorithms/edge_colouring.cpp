#include "algorithms/edge_colouring.hpp"

#include <algorithm>
#include <stdexcept>

#include "local/distance_colouring.hpp"
#include "local/graph_view.hpp"
#include "local/row_anchors.hpp"
#include "local/mis.hpp"

namespace lclgrid::algorithms {

namespace {

/// Does the radius-`k` L-infinity ball of `centre` contain a node of M
/// other than `centre` itself?
bool ballContainsOther(const TorusD& torus, const std::vector<std::uint8_t>& m,
                       long long centre, int k) {
  for (long long w : torus.linfBall(centre, k)) {
    if (w != centre && m[static_cast<std::size_t>(w)]) return true;
  }
  return false;
}

}  // namespace

EdgeColouringResult edgeColouringWithParams(
    const TorusD& torus, const std::vector<std::uint64_t>& ids,
    const EdgeColouringParams& params) {
  const int d = torus.dims();
  const int count = static_cast<int>(torus.size());
  EdgeColouringResult result;
  result.k = params.k;
  result.rowSpacing = params.rowSpacing;
  result.palette = 2 * d + 1;
  const int k = params.k;
  const int spacing = params.rowSpacing;
  if (k < 1 || spacing < 2 * k + 2) {
    throw std::invalid_argument("edgeColouring: need k >= 1, spacing >= 2k+2");
  }
  if (torus.n() < 2 * (spacing + 1)) {
    result.failure = "torus too small for row spacing";
    return result;
  }

  // Per dimension: j,k-independent set via per-row MIS + eastward moving.
  // The paper orders the moving phases by a distance-4k colouring of the
  // whole grid; colouring the conflict graph of the M-nodes themselves is
  // equivalent (only M-nodes move) and far cheaper to simulate. A mover
  // never needs to travel further than the in-row spacing (it would reach
  // the next in-row M node); the cap catches pathological crowding.
  std::vector<std::vector<std::uint8_t>> mSets;
  const int maxMove = spacing;
  const int conflictRadius = 4 * k + 2;
  for (int q = 0; q < d; ++q) {
    auto rowAnchors = local::sparseRowAnchors(torus, q, spacing, ids);
    result.rounds += rowAnchors.rounds;
    if (rowAnchors.separation < spacing) {
      result.failure = "row anchors could not reach the requested spacing";
      return result;
    }
    std::vector<std::uint8_t> m = std::move(rowAnchors.inSet);

    // Phase ordering: colour the conflict graph of M-nodes (those whose
    // moving ranges can interact).
    std::vector<long long> mNodes;
    for (int v = 0; v < count; ++v) {
      if (m[static_cast<std::size_t>(v)]) mNodes.push_back(v);
    }
    std::vector<std::vector<int>> conflictAdj(mNodes.size());
    for (std::size_t i = 0; i < mNodes.size(); ++i) {
      for (std::size_t j = i + 1; j < mNodes.size(); ++j) {
        if (torus.linf(mNodes[i], mNodes[j]) <= conflictRadius) {
          conflictAdj[i].push_back(static_cast<int>(j));
          conflictAdj[j].push_back(static_cast<int>(i));
        }
      }
    }
    int conflictDegree = 1;
    for (const auto& adj : conflictAdj) {
      conflictDegree = std::max(conflictDegree, static_cast<int>(adj.size()));
    }
    local::GraphView conflictView;
    conflictView.count = static_cast<int>(mNodes.size());
    conflictView.maxDegree = conflictDegree;
    conflictView.simulationFactor = conflictRadius * d;
    conflictView.neighbours = [&conflictAdj](int v) {
      return conflictAdj[static_cast<std::size_t>(v)];
    };
    std::vector<std::uint64_t> mIds(mNodes.size());
    for (std::size_t i = 0; i < mNodes.size(); ++i) {
      mIds[i] = ids[static_cast<std::size_t>(mNodes[i])];
    }
    auto phaseColouring = local::colourView(conflictView, mIds);
    result.rounds += phaseColouring.gridRounds;

    // A moved node keeps the phase colour of its original position (the
    // paper: "we denote the new node in M again by u and assign it the same
    // colour u had before"), so each node moves in at most one phase.
    std::vector<int> carriedColour(static_cast<std::size_t>(count), -1);
    for (std::size_t i = 0; i < mNodes.size(); ++i) {
      carriedColour[static_cast<std::size_t>(mNodes[i])] =
          phaseColouring.colour[i];
    }

    // Phase p: every M-node of phase colour p that sees another M-node in
    // its radius-2k ball moves east (+1 along axis q) until clear.
    for (int p = 0; p < phaseColouring.paletteSize; ++p) {
      std::vector<long long> movers;
      for (int v = 0; v < count; ++v) {
        if (m[static_cast<std::size_t>(v)] &&
            carriedColour[static_cast<std::size_t>(v)] == p &&
            ballContainsOther(torus, m, v, 2 * k)) {
          movers.push_back(v);
        }
      }
      int steps = 0;
      while (!movers.empty()) {
        if (++steps > maxMove) {
          result.failure = "moving phase exceeded its step budget";
          return result;
        }
        // Synchronous step: all movers shift one cell east simultaneously.
        std::vector<long long> next;
        for (long long v : movers) {
          m[static_cast<std::size_t>(v)] = 0;
        }
        for (long long v : movers) {
          long long moved = torus.shiftAxis(v, q, 1);
          m[static_cast<std::size_t>(moved)] = 1;
          carriedColour[static_cast<std::size_t>(moved)] =
              carriedColour[static_cast<std::size_t>(v)];
          next.push_back(moved);
        }
        movers.clear();
        for (long long v : next) {
          if (ballContainsOther(torus, m, v, 2 * k)) movers.push_back(v);
        }
        result.rounds += 2 * k + 1;  // one step incl. ball re-inspection
      }
    }

    // Definition 18 property (2): radius-k balls pairwise disjoint, i.e.
    // centres pairwise L-infinity distance > 2k.
    for (int v = 0; v < count; ++v) {
      if (m[static_cast<std::size_t>(v)] &&
          ballContainsOther(torus, m, v, 2 * k)) {
        result.failure = "j,k-independence violated after moving";
        return result;
      }
    }
    mSets.push_back(std::move(m));
  }

  // Marking phase, one dimension at a time: each M_q node marks an edge of
  // its own q-row inside its radius-k ball, avoiding previously marked
  // edges. `endpointUsed` tracks endpoints of marked edges.
  const long long edgeCount = torus.size() * d;
  std::vector<std::uint8_t> marked(static_cast<std::size_t>(edgeCount), 0);
  std::vector<std::uint8_t> endpointUsed(static_cast<std::size_t>(count), 0);
  for (int q = 0; q < d; ++q) {
    for (int v = 0; v < count; ++v) {
      if (!mSets[static_cast<std::size_t>(q)][static_cast<std::size_t>(v)]) {
        continue;
      }
      bool chose = false;
      for (int t = -k; t < k && !chose; ++t) {
        long long a = torus.shiftAxis(v, q, t);
        long long b = torus.shiftAxis(v, q, t + 1);
        if (endpointUsed[static_cast<std::size_t>(a)] ||
            endpointUsed[static_cast<std::size_t>(b)]) {
          continue;
        }
        marked[static_cast<std::size_t>(edgeId(torus, a, q))] = 1;
        endpointUsed[static_cast<std::size_t>(a)] = 1;
        endpointUsed[static_cast<std::size_t>(b)] = 1;
        chose = true;
      }
      if (!chose) {
        result.failure = "marking failed (no non-adjacent edge available)";
        return result;
      }
    }
    result.rounds += 2 * k + 1;
  }

  // Colour assignment: marked edges take colour 2d; each q-row is walked
  // from each marked edge eastwards, alternating colours 2q and 2q+1.
  result.colour.assign(static_cast<std::size_t>(edgeCount), -1);
  for (int q = 0; q < d; ++q) {
    // Enumerate rows: fix all coordinates except axis q to zero-side reps.
    std::vector<std::uint8_t> visited(static_cast<std::size_t>(count), 0);
    int longestSegment = 0;
    for (int start = 0; start < count; ++start) {
      if (visited[static_cast<std::size_t>(start)]) continue;
      // Collect the row through `start` along axis q.
      std::vector<long long> row;
      long long v = start;
      do {
        visited[static_cast<std::size_t>(v)] = 1;
        row.push_back(v);
        v = torus.shiftAxis(v, q, 1);
      } while (v != start);

      // Find marked edges on this row.
      std::vector<int> markedPositions;
      for (std::size_t i = 0; i < row.size(); ++i) {
        long long e = edgeId(torus, row[i], q);
        if (marked[static_cast<std::size_t>(e)]) {
          markedPositions.push_back(static_cast<int>(i));
          result.colour[static_cast<std::size_t>(e)] = 2 * d;
        }
      }
      if (markedPositions.empty()) {
        result.failure = "a row has no marked edge (spacing too large?)";
        return result;
      }
      // Alternate within each segment between consecutive marked edges.
      const int rowLen = static_cast<int>(row.size());
      for (std::size_t mIdx = 0; mIdx < markedPositions.size(); ++mIdx) {
        int from = markedPositions[mIdx];
        int to = markedPositions[(mIdx + 1) % markedPositions.size()];
        int segment = (to - from + rowLen) % rowLen;
        if (segment == 0) segment = rowLen;
        longestSegment = std::max(longestSegment, segment);
        int parity = 0;
        for (int off = 1; off < segment; ++off) {
          long long e =
              edgeId(torus, row[static_cast<std::size_t>((from + off) % rowLen)], q);
          result.colour[static_cast<std::size_t>(e)] = 2 * q + parity;
          parity ^= 1;
        }
      }
    }
    result.rounds += longestSegment + 1;  // segment-local negotiation
  }

  if (!isProperEdgeColouringD(torus, result.colour, result.palette)) {
    result.failure = "produced edge colouring not proper";
    return result;
  }
  result.solved = true;
  return result;
}

EdgeColouringResult edgeColouringGrid(const TorusD& torus,
                                      const std::vector<std::uint64_t>& ids) {
  const int d = torus.dims();
  EdgeColouringResult last;
  // Disjoint radius-k balls with one M-node per row per spacing force
  // spacing >= (2k+1)^d geometrically (d=1: 2k+1); the ladder adds slack so
  // the moving procedure can actually reach a disjoint configuration.
  for (int k : {std::max(1, 2 * d - 1), 2 * d}) {
    long long ballVolume = 1;
    for (int i = 0; i < d; ++i) ballVolume *= 2 * k + 1;
    for (int slack : {2, 3, 4}) {
      long long spacing = slack * ballVolume;
      if (spacing < 2 * k + 2 || torus.n() < 2 * spacing + 2) continue;
      EdgeColouringParams params{k, static_cast<int>(spacing)};
      last = edgeColouringWithParams(torus, ids, params);
      if (last.solved) return last;
    }
  }
  if (last.failure.empty()) last.failure = "no feasible parameters for torus";
  return last;
}

bool isProperEdgeColouringD(const TorusD& torus,
                            const std::vector<int>& colour, int palette) {
  const int d = torus.dims();
  for (long long v = 0; v < torus.size(); ++v) {
    // Incident edges: (v, axis) and (v - e_axis, axis) for every axis.
    std::vector<int> incident;
    for (int axis = 0; axis < d; ++axis) {
      incident.push_back(
          colour[static_cast<std::size_t>(edgeId(torus, v, axis))]);
      incident.push_back(colour[static_cast<std::size_t>(
          edgeId(torus, torus.shiftAxis(v, axis, -1), axis))]);
    }
    for (int c : incident) {
      if (c < 0 || c >= palette) return false;
    }
    std::sort(incident.begin(), incident.end());
    if (std::adjacent_find(incident.begin(), incident.end()) !=
        incident.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace lclgrid::algorithms
