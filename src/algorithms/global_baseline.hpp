// The Theta(n) brute-force baseline of Section 7: gather the whole torus
// (diameter rounds) and solve the LCL centrally -- asymptotically optimal
// for global problems. Wraps the SAT-backed solver in the same run-report
// interface as the fast algorithms so benches can print them side by side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/grid_lcl.hpp"

namespace lclgrid::algorithms {

struct BaselineRun {
  bool solved = false;
  std::vector<int> labels;
  int rounds = 0;  // torus diameter: the gather cost
  std::string failure;
};

/// Gather-and-solve. The identifiers are unused (the central solve is
/// deterministic), but accepted for interface uniformity.
BaselineRun solveByGathering(const Torus2D& torus, const GridLcl& lcl);

}  // namespace lclgrid::algorithms
