// The 4-colouring algorithm of Section 8 (Theorem 4): for every fixed d >= 2,
// d-dimensional toroidal grids can be 4-coloured in Theta(log* n) rounds.
//
// Pipeline (as in the paper's proof):
//  1. anchors M = maximal independent set of G[ell] (L-infinity power);
//  2. conflict graph H over M (anchors whose inflated balls may touch);
//     colour H, then assign each anchor a radius r(v) in (ell, 2*ell) class
//     by class, so that bounding hyperplanes of any two touching balls are
//     separated by >= 2 in every dimension (the (l,12d)-conflict colouring);
//  3. count(v) = number of (dimension, anchor) border incidences; the parity
//     of count splits V into V1 / V2 whose connected components have weak
//     diameter O(d*ell) (Lemma 8);
//  4. each component 2-colours itself from a local leader (the grid is
//     bipartite, so BFS parity is consistent), giving 4 colours total.
//
// The paper's worst-case parameter ell = 1 + 12d*16^d exists only to make
// the conflict colouring argument airtight; the implementation takes ell as
// a parameter with a retry ladder and verifies every run (failures are
// reported, never observed with the defaults).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/torusd.hpp"

namespace lclgrid::algorithms {

struct FourColouringResult {
  bool solved = false;
  std::vector<int> colour;  // values in {0,1,2,3}, indexed by node id
  int rounds = 0;
  int ell = 0;              // the ball-radius parameter actually used
  int anchorCount = 0;
  /// True when the greedy conflict-colouring radius assignment (the paper's
  /// distributed procedure) failed at this ell and a centralized backtrack
  /// search supplied the radii instead. The paper's procedure is guaranteed
  /// only for ell >= 1 + 12d*16^d, far beyond laptop-scale tori; the rest of
  /// the pipeline (border parity, component colouring) is unchanged and the
  /// result is verified either way. See DESIGN.md (substitutions).
  bool radiusByBacktracking = false;
  std::string failure;
};

/// One attempt at a fixed even ell >= 2 (torus must satisfy n >= 4*ell + 4).
FourColouringResult fourColouringWithEll(const TorusD& torus,
                                         const std::vector<std::uint64_t>& ids,
                                         int ell);

/// Retry ladder over ell = 4, 6, 8, ... (first success wins).
FourColouringResult fourColouring(const TorusD& torus,
                                  const std::vector<std::uint64_t>& ids);

/// Proper-colouring check on the d-dimensional torus.
bool isProperColouringD(const TorusD& torus, const std::vector<int>& colour,
                        int palette);

}  // namespace lclgrid::algorithms
