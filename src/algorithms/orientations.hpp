// X-orientations (Section 11, Theorem 22): orient every edge of the
// 2-dimensional torus so that each node's in-degree lies in X.
//
//  * 2 in X: the consistent input orientation (everything points north/east)
//    already gives every node in-degree exactly 2 -- a Theta(1) algorithm.
//  * {1,3,4} subset of X, or {0,1,3} subset of X: Theta(log* n) via the
//    synthesis of Section 7 with k = 1 (Lemma 23); the {0,1,3} case is the
//    edge-flip of the {1,3,4} case.
//  * otherwise: global; solvable for some n only (e.g. no {1,3}-orientation
//    exists for odd n, Lemma 24).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::algorithms {

enum class OrientationClass {
  Constant,   // 2 in X
  LogStar,    // {1,3,4} or {0,1,3} subset of X
  Global,     // everything else (incl. unsolvable-for-some-n)
  Unsolvable, // X empty (no orientation can ever satisfy it)
};

/// The classification *claimed by Theorem 22* (the paper side of the
/// reproduction tables; the measured side comes from the synthesis oracle).
OrientationClass classifyOrientationPaper(const std::set<int>& x);

std::string orientationClassName(OrientationClass c);

struct OrientationRun {
  bool solved = false;
  std::vector<int> labels;  // problems::orientation encoding (sigma = 4)
  int rounds = 0;
  OrientationClass algorithmClass = OrientationClass::Global;
  std::string failure;
};

/// Solves the X-orientation problem with the asymptotically optimal
/// algorithm for its class: O(1) / synthesized normal form / global SAT.
OrientationRun solveOrientation(const Torus2D& torus, const std::set<int>& x,
                                const std::vector<std::uint64_t>& ids);

}  // namespace lclgrid::algorithms
