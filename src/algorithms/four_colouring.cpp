#include "algorithms/four_colouring.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "local/distance_colouring.hpp"
#include "local/graph_view.hpp"
#include "local/mis.hpp"

namespace lclgrid::algorithms {

namespace {

/// Separation condition of the radius assignment (constraint (2)/(3) in
/// Section 8): whenever the inflated balls B(u, ru+1) and B(v, rv+1)
/// intersect, every pair of bounding hyperplanes must be >= 2 apart in
/// every dimension. Non-intersecting balls are unconstrained.
bool radiiCompatible(const TorusD& torus, long long u, long long v, int ru,
                     int rv) {
  if (torus.linf(u, v) > ru + rv + 2) return true;  // balls cannot touch
  for (int axis = 0; axis < torus.dims(); ++axis) {
    int ui = torus.coord(u, axis);
    int vi = torus.coord(v, axis);
    for (int e1 : {-1, 1}) {
      for (int e2 : {-1, 1}) {
        if (torus.axisDist(ui + e1 * ru + torus.n(), vi + e2 * rv + torus.n()) <
            2) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

FourColouringResult fourColouringWithEll(const TorusD& torus,
                                         const std::vector<std::uint64_t>& ids,
                                         int ell) {
  FourColouringResult result;
  result.ell = ell;
  if (ell < 2 || ell % 2 != 0) {
    throw std::invalid_argument("fourColouringWithEll: ell must be even >= 2");
  }
  if (torus.n() < 6 * ell + 4) {
    result.failure = "torus too small for ell";
    return result;
  }
  const int d = torus.dims();
  const int count = static_cast<int>(torus.size());

  // Step 1: anchors = MIS of G[ell].
  auto view = local::linfPowerViewD(torus, ell);
  auto mis = local::computeMis(view, ids);
  result.rounds += mis.gridRounds;

  std::vector<long long> anchors;
  std::unordered_map<long long, int> anchorIndex;
  for (int v = 0; v < count; ++v) {
    if (mis.inSet[static_cast<std::size_t>(v)]) {
      anchorIndex.emplace(v, static_cast<int>(anchors.size()));
      anchors.push_back(v);
    }
  }
  result.anchorCount = static_cast<int>(anchors.size());

  // Radii are drawn from (ell, 3*ell): the paper uses (ell, 2*ell), but any
  // upper bound works for coverage and a wider range makes the greedy
  // conflict colouring feasible at laptop-scale ell (the paper's worst-case
  // ell = 1 + 12d*16^d exists to guarantee the range is wide enough).
  const int maxRadius = 3 * ell - 1;

  // Step 2a: conflict graph H -- anchors whose inflated balls can interact.
  const int interactionRadius = 2 * maxRadius + 4;
  std::vector<std::vector<int>> hAdj(anchors.size());
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      if (torus.linf(anchors[i], anchors[j]) <= interactionRadius) {
        hAdj[i].push_back(static_cast<int>(j));
        hAdj[j].push_back(static_cast<int>(i));
      }
    }
  }
  int hMaxDegree = 0;
  for (const auto& adj : hAdj) {
    hMaxDegree = std::max(hMaxDegree, static_cast<int>(adj.size()));
  }

  // Step 2b: colour H (a view round on H is simulated in interactionRadius*d
  // grid rounds).
  local::GraphView hView;
  hView.count = static_cast<int>(anchors.size());
  hView.maxDegree = std::max(hMaxDegree, 1);
  hView.simulationFactor = interactionRadius * d;
  hView.neighbours = [&hAdj](int v) { return hAdj[static_cast<std::size_t>(v)]; };
  std::vector<std::uint64_t> anchorIds(anchors.size());
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    anchorIds[i] = ids[static_cast<std::size_t>(anchors[i])];
  }
  auto hColouring = local::colourView(hView, anchorIds);
  result.rounds += hColouring.gridRounds;

  // Step 2c: radius assignment, one colour class per round (the paper's
  // greedy conflict colouring). Guaranteed only at the paper's astronomical
  // ell; at laptop-scale ell we fall back to a centralized backtracking
  // search over the same constraint system (recorded in the result).
  std::vector<int> radius(anchors.size(), -1);
  bool greedyOk = true;
  for (int cls = 0; cls < hColouring.paletteSize && greedyOk; ++cls) {
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      if (hColouring.colour[i] != cls) continue;
      int chosen = -1;
      for (int candidate = ell + 1; candidate <= maxRadius; ++candidate) {
        bool ok = true;
        for (int j : hAdj[i]) {
          if (radius[static_cast<std::size_t>(j)] < 0) continue;
          if (!radiiCompatible(torus, anchors[i],
                               anchors[static_cast<std::size_t>(j)], candidate,
                               radius[static_cast<std::size_t>(j)])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          chosen = candidate;
          break;
        }
      }
      if (chosen < 0) {
        greedyOk = false;
        break;
      }
      radius[i] = chosen;
    }
  }
  result.rounds += hColouring.paletteSize * interactionRadius * d;

  if (!greedyOk) {
    // Backtracking over anchors with the identical constraints.
    std::fill(radius.begin(), radius.end(), -1);
    result.radiusByBacktracking = true;
    long long budget = 2'000'000;
    std::vector<std::size_t> order(anchors.size());
    for (std::size_t i = 0; i < anchors.size(); ++i) order[i] = i;
    std::function<bool(std::size_t)> assign = [&](std::size_t idx) -> bool {
      if (idx == order.size()) return true;
      std::size_t i = order[idx];
      for (int candidate = ell + 1; candidate <= maxRadius; ++candidate) {
        if (--budget < 0) return false;
        bool ok = true;
        for (int j : hAdj[i]) {
          if (radius[static_cast<std::size_t>(j)] < 0) continue;
          if (!radiiCompatible(torus, anchors[i],
                               anchors[static_cast<std::size_t>(j)], candidate,
                               radius[static_cast<std::size_t>(j)])) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        radius[i] = candidate;
        if (assign(idx + 1)) return true;
        radius[i] = -1;
      }
      return false;
    };
    if (!assign(0)) {
      result.failure = "radius assignment failed (increase ell)";
      return result;
    }
  }

  // Step 3: border counts. v is on the i-th border of anchor u iff
  // linf(v, u) == r(u) and the i-th axis attains it.
  std::vector<int> borderCount(static_cast<std::size_t>(count), 0);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    long long u = anchors[i];
    int r = radius[i];
    for (long long w : torus.linfBall(u, r)) {
      if (torus.linf(w, u) != r) continue;
      for (int axis = 0; axis < d; ++axis) {
        if (torus.axisDist(torus.coord(w, axis), torus.coord(u, axis)) == r) {
          ++borderCount[static_cast<std::size_t>(w)];
        }
      }
    }
  }

  // Check coverage (property (1)): every node inside some B(v, r(v)-1).
  std::vector<std::uint8_t> covered(static_cast<std::size_t>(count), 0);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (long long w : torus.linfBall(anchors[i], radius[i] - 1)) {
      covered[static_cast<std::size_t>(w)] = 1;
    }
  }
  for (int v = 0; v < count; ++v) {
    if (!covered[static_cast<std::size_t>(v)]) {
      result.failure = "coverage property violated (increase ell)";
      return result;
    }
  }

  // Step 4: parts by parity; 2-colour each connected component of a part by
  // BFS parity from its leader (the grid is bipartite, so this is proper).
  std::vector<int> part(static_cast<std::size_t>(count));
  for (int v = 0; v < count; ++v) {
    part[static_cast<std::size_t>(v)] =
        borderCount[static_cast<std::size_t>(v)] % 2;
  }
  result.colour.assign(static_cast<std::size_t>(count), -1);
  std::vector<int> componentDiameter;
  for (int start = 0; start < count; ++start) {
    if (result.colour[static_cast<std::size_t>(start)] >= 0) continue;
    // BFS within the part.
    std::deque<std::pair<long long, int>> queue{{start, 0}};
    result.colour[static_cast<std::size_t>(start)] =
        2 * part[static_cast<std::size_t>(start)];
    int depthSeen = 0;
    while (!queue.empty()) {
      auto [v, depth] = queue.front();
      queue.pop_front();
      depthSeen = std::max(depthSeen, depth);
      for (int axis = 0; axis < d; ++axis) {
        for (bool positive : {false, true}) {
          long long u = torus.step(v, axis, positive);
          if (part[static_cast<std::size_t>(u)] !=
              part[static_cast<std::size_t>(v)]) {
            continue;
          }
          if (result.colour[static_cast<std::size_t>(u)] >= 0) continue;
          result.colour[static_cast<std::size_t>(u)] =
              2 * part[static_cast<std::size_t>(u)] + ((depth + 1) % 2);
          queue.emplace_back(u, depth + 1);
        }
      }
    }
    componentDiameter.push_back(depthSeen);
  }
  int worstComponent = 0;
  for (int diameter : componentDiameter) {
    worstComponent = std::max(worstComponent, diameter);
  }
  result.rounds += 2 * worstComponent + 1;  // leader election + parity spread

  if (!isProperColouringD(torus, result.colour, 4)) {
    result.failure = "produced colouring not proper (increase ell)";
    result.solved = false;
    return result;
  }
  result.solved = true;
  return result;
}

FourColouringResult fourColouring(const TorusD& torus,
                                  const std::vector<std::uint64_t>& ids) {
  FourColouringResult last;
  for (int ell = 2; ell <= 12; ell += 2) {
    if (torus.n() < 6 * ell + 4) break;
    last = fourColouringWithEll(torus, ids, ell);
    if (last.solved) return last;
  }
  if (last.failure.empty()) last.failure = "no feasible ell for this torus";
  return last;
}

bool isProperColouringD(const TorusD& torus, const std::vector<int>& colour,
                        int palette) {
  for (long long v = 0; v < torus.size(); ++v) {
    int c = colour[static_cast<std::size_t>(v)];
    if (c < 0 || c >= palette) return false;
    for (int axis = 0; axis < torus.dims(); ++axis) {
      if (colour[static_cast<std::size_t>(torus.step(v, axis, true))] == c) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lclgrid::algorithms
