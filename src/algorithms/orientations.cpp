#include "algorithms/orientations.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

namespace lclgrid::algorithms {

namespace {

bool containsAll(const std::set<int>& x, std::initializer_list<int> needed) {
  for (int v : needed) {
    if (!x.contains(v)) return false;
  }
  return true;
}

/// Cache of synthesized rules per X (synthesis is deterministic; k = 1
/// suffices for both log* cases, per Lemma 23). The map mutex is held only
/// to look up / insert the per-X cell; the synthesis itself runs under the
/// cell's once_flag, so concurrent engine-pool sweeps neither race, nor
/// synthesize the same X twice, nor serialise *different* X values behind
/// one deep SAT call. Cells are heap-owned shared_ptrs, so references stay
/// valid across later map insertions.
const synthesis::SynthesizedRule& synthesizedRuleFor(const std::set<int>& x) {
  struct Cell {
    std::once_flag once;
    synthesis::SynthesizedRule rule;
  };
  static std::mutex cacheMutex;
  static std::map<std::set<int>, std::shared_ptr<Cell>> cache;
  std::shared_ptr<Cell> cell;
  {
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto& slot = cache[x];
    if (!slot) slot = std::make_shared<Cell>();
    cell = slot;
  }
  std::call_once(cell->once, [&]() {
    auto lcl = problems::orientation(x);
    synthesis::SynthesisOptions options;
    options.maxK = 2;
    auto result = synthesis::synthesize(lcl, options);
    if (!result.success) {
      throw std::logic_error("orientation synthesis failed for a log* case");
    }
    cell->rule = std::move(*result.rule);
  });
  return cell->rule;
}

}  // namespace

OrientationClass classifyOrientationPaper(const std::set<int>& x) {
  if (x.empty()) return OrientationClass::Unsolvable;
  if (x.contains(2)) return OrientationClass::Constant;
  if (containsAll(x, {1, 3, 4}) || containsAll(x, {0, 1, 3})) {
    return OrientationClass::LogStar;
  }
  return OrientationClass::Global;
}

std::string orientationClassName(OrientationClass c) {
  switch (c) {
    case OrientationClass::Constant: return "Theta(1)";
    case OrientationClass::LogStar: return "Theta(log* n)";
    case OrientationClass::Global: return "global";
    case OrientationClass::Unsolvable: return "unsolvable";
  }
  return "?";
}

OrientationRun solveOrientation(const Torus2D& torus, const std::set<int>& x,
                                const std::vector<std::uint64_t>& ids) {
  OrientationRun run;
  run.algorithmClass = classifyOrientationPaper(x);

  switch (run.algorithmClass) {
    case OrientationClass::Unsolvable:
      run.failure = "empty X";
      return run;

    case OrientationClass::Constant: {
      // The input orientation: every node's E/N edges point away from it,
      // giving in-degree exactly 2 everywhere.
      run.labels.assign(static_cast<std::size_t>(torus.size()),
                        problems::orientationLabel(true, true));
      run.rounds = 0;
      run.solved = true;
      return run;
    }

    case OrientationClass::LogStar: {
      const auto& rule = synthesizedRuleFor(x);
      synthesis::NormalFormAlgorithm algorithm(rule);
      if (torus.n() < algorithm.minimumN()) {
        run.failure = "torus below the normal form's minimum n";
        return run;
      }
      auto normalForm = algorithm.execute(torus, ids);
      run.solved = normalForm.solved;
      run.labels = std::move(normalForm.labels);
      run.rounds = normalForm.rounds;
      run.failure = normalForm.failure;
      return run;
    }

    case OrientationClass::Global: {
      auto lcl = problems::orientation(x);
      auto global = solveGlobally(torus, lcl);
      run.rounds = bruteForceRounds(torus.n());
      if (!global.feasible) {
        run.failure = "no X-orientation exists on this torus";
        return run;
      }
      run.labels = std::move(global.labels);
      run.solved = true;
      return run;
    }
  }
  return run;
}

}  // namespace lclgrid::algorithms
