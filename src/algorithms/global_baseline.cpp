#include "algorithms/global_baseline.hpp"

#include "lcl/global_solver.hpp"

namespace lclgrid::algorithms {

BaselineRun solveByGathering(const Torus2D& torus, const GridLcl& lcl) {
  BaselineRun run;
  run.rounds = bruteForceRounds(torus.n());
  auto global = solveGlobally(torus, lcl);
  if (!global.feasible) {
    run.failure = "no feasible labelling on this torus";
    return run;
  }
  run.labels = std::move(global.labels);
  run.solved = true;
  return run;
}

}  // namespace lclgrid::algorithms
