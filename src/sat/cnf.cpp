#include "sat/cnf.hpp"

#include <stdexcept>

namespace lclgrid::sat {

DomainVar::DomainVar(Solver& solver, int domain) {
  if (domain < 1) throw std::invalid_argument("DomainVar: empty domain");
  vars_.reserve(static_cast<std::size_t>(domain));
  for (int v = 0; v < domain; ++v) vars_.push_back(solver.newVar());
}

int DomainVar::decode(const Solver& solver) const {
  for (int v = 0; v < domain(); ++v) {
    if (solver.modelValue(vars_[v])) return v;
  }
  throw std::logic_error("DomainVar::decode: no value set in model");
}

void addAtLeastOne(Solver& solver, const std::vector<int>& lits) {
  solver.addClause(lits);
}

void addAtMostOne(Solver& solver, const std::vector<int>& lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      solver.addClause({-lits[i], -lits[j]});
    }
  }
}

void addExactlyOne(Solver& solver, const std::vector<int>& lits) {
  addAtLeastOne(solver, lits);
  addAtMostOne(solver, lits);
}

DomainVar makeDomainVar(Solver& solver, int domain) {
  DomainVar dv(solver, domain);
  std::vector<int> lits;
  lits.reserve(static_cast<std::size_t>(domain));
  for (int v = 0; v < domain; ++v) lits.push_back(dv.is(v));
  addExactlyOne(solver, lits);
  return dv;
}

ClauseGroup::ClauseGroup(Solver& solver) : guard_(solver.newVar()) {}

bool ClauseGroup::addClause(Solver& solver, std::vector<int> clause) {
  if (!open()) throw std::logic_error("ClauseGroup: add to a closed group");
  clause.push_back(-guard_);
  return solver.addClause(clause);
}

void ClauseGroup::retire(Solver& solver) {
  if (!open()) return;
  solver.addClause({-guard_});
  closed_ = true;
  // The unit guard satisfies (and thereby disables) every clause of the
  // group, including learnt clauses that mention the guard: purge them now
  // rather than carrying dead clauses until learnt-DB reduction. Long-lived
  // ladder solvers retire one group per rung, so this keeps the database
  // proportional to the *active* encoding -- and once the dead fraction
  // crosses the GC threshold, the compaction inside also collects the
  // arena, so the memory comes back too (docs/sat.md).
  solver.compactDatabase();
}

void ClauseGroup::commit(Solver& solver) {
  if (!open()) return;
  solver.addClause({guard_});
  closed_ = true;
}

}  // namespace lclgrid::sat
