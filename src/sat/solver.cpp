#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/telemetry.hpp"

namespace lclgrid::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr std::int64_t kRestartBase = 128;
}  // namespace

Solver::Solver() = default;

int Solver::newVar() {
  int var = static_cast<int>(assigns_.size());
  assigns_.push_back(kUnassigned);
  savedPhase_.push_back(1);  // default phase: false (often good for EO encodings)
  level_.push_back(0);
  reason_.push_back(kUndef);
  activity_.push_back(0.0);
  heapPosition_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(var);
  return var + 1;
}

void Solver::reserveVars(int count) {
  assigns_.reserve(static_cast<std::size_t>(count));
  watches_.reserve(2 * static_cast<std::size_t>(count));
  while (numVars() < count) newVar();
}

Solver::Lit Solver::fromDimacs(int d) const {
  if (d == 0) throw std::invalid_argument("DIMACS literal 0");
  int var = std::abs(d) - 1;
  if (var >= numVars()) throw std::out_of_range("literal for unknown variable");
  return mkLit(var, d < 0);
}

std::uint8_t Solver::litValue(Lit l) const {
  std::uint8_t a = assigns_[varOf(l)];
  if (a == kUnassigned) return kUnassigned;
  return static_cast<std::uint8_t>(a ^ (signOf(l) ? 1 : 0));
}

bool Solver::addClause(const std::vector<int>& dimacsLits) {
  if (unsatisfiable_) return false;
  std::vector<Lit> lits;
  lits.reserve(dimacsLits.size());
  for (int d : dimacsLits) lits.push_back(fromDimacs(d));

  // Normalise: sort, remove duplicates, detect tautologies, drop literals
  // already false at level 0 and detect satisfied clauses.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> cleaned;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == negate(lits[i])) return true;
    if (i > 0 && lits[i] == negate(lits[i - 1])) return true;
    std::uint8_t value = litValue(lits[i]);
    if (value == kTrue) return true;  // satisfied at level 0
    if (value == kFalse) continue;    // permanently false literal
    cleaned.push_back(lits[i]);
  }

  if (cleaned.empty()) {
    unsatisfiable_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    enqueue(cleaned[0], kUndef);
    if (propagate() != kUndef) {
      unsatisfiable_ = true;
      return false;
    }
    return true;
  }
  addClauseInternal(std::move(cleaned), /*learnt=*/false);
  return true;
}

int Solver::addClauseInternal(std::vector<Lit> lits, bool learnt) {
  int idx = static_cast<int>(clauses_.size());
  Clause clause;
  clause.lits = std::move(lits);
  clause.learnt = learnt;
  if (learnt) {
    clause.lbd = computeLbd(clause.lits);
    clause.activity = clauseActivityIncrement_;
    learntIndices_.push_back(idx);
    ++stats_.learntClauses;
  }
  ++stats_.liveClauses;
  stats_.liveLiterals += static_cast<std::int64_t>(clause.lits.size());
  clauses_.push_back(std::move(clause));
  attachClause(idx);
  return idx;
}

void Solver::attachClause(int idx) {
  const Clause& clause = clauses_[idx];
  watches_[negate(clause.lits[0])].push_back({idx, clause.lits[1]});
  watches_[negate(clause.lits[1])].push_back({idx, clause.lits[0]});
}

void Solver::enqueue(Lit l, int reasonClause) {
  int var = varOf(l);
  assigns_[var] = signOf(l) ? kFalse : kTrue;
  savedPhase_[var] = signOf(l) ? 1 : 0;
  level_[var] = currentLevel();
  reason_[var] = reasonClause;
  trail_.push_back(l);
}

int Solver::propagate() {
  while (propagationHead_ < static_cast<int>(trail_.size())) {
    Lit propagated = trail_[propagationHead_++];
    ++stats_.propagations;
    std::vector<Watcher>& watchList = watches_[propagated];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchList.size(); ++i) {
      Watcher w = watchList[i];
      if (litValue(w.blocker) == kTrue) {
        watchList[keep++] = w;
        continue;
      }
      Clause& clause = clauses_[w.clause];
      if (clause.deleted) continue;  // drop watcher for deleted clause
      // Ensure the falsified literal is at position 1.
      Lit falseLit = negate(propagated);
      if (clause.lits[0] == falseLit) std::swap(clause.lits[0], clause.lits[1]);
      Lit first = clause.lits[0];
      if (first != w.blocker && litValue(first) == kTrue) {
        watchList[keep++] = {w.clause, first};
        continue;
      }
      // Look for a new literal to watch.
      bool foundWatch = false;
      for (std::size_t j = 2; j < clause.lits.size(); ++j) {
        if (litValue(clause.lits[j]) != kFalse) {
          std::swap(clause.lits[1], clause.lits[j]);
          watches_[negate(clause.lits[1])].push_back({w.clause, first});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;
      // Clause is unit or conflicting.
      watchList[keep++] = {w.clause, first};
      if (litValue(first) == kFalse) {
        // Conflict: keep remaining watchers, signal conflict.
        for (std::size_t j = i + 1; j < watchList.size(); ++j) {
          watchList[keep++] = watchList[j];
        }
        watchList.resize(keep);
        propagationHead_ = static_cast<int>(trail_.size());
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    watchList.resize(keep);
  }
  return kUndef;
}

int Solver::computeLbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels among the literals.
  std::vector<int> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) levels.push_back(level_[varOf(l)]);
  std::sort(levels.begin(), levels.end());
  return static_cast<int>(std::unique(levels.begin(), levels.end()) -
                          levels.begin());
}

void Solver::analyze(int conflictClause, std::vector<Lit>& learnt,
                     int& backtrackLevel) {
  learnt.clear();
  learnt.push_back(0);  // placeholder for the asserting literal
  int counter = 0;
  Lit asserting = kUndef;
  int trailIndex = static_cast<int>(trail_.size()) - 1;
  int clauseIdx = conflictClause;

  // First-UIP resolution walk backwards over the trail.
  do {
    Clause& clause = clauses_[clauseIdx];
    if (clause.learnt) bumpClause(clauseIdx);
    std::size_t start = (asserting == kUndef) ? 0 : 1;
    for (std::size_t i = start; i < clause.lits.size(); ++i) {
      Lit q = clause.lits[i];
      int var = varOf(q);
      if (seen_[var] || level_[var] == 0) continue;
      seen_[var] = 1;
      bumpVar(var);
      if (level_[var] == currentLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Find the next literal on the current level to resolve on.
    while (!seen_[varOf(trail_[trailIndex])]) --trailIndex;
    asserting = trail_[trailIndex];
    --trailIndex;
    seen_[varOf(asserting)] = 0;
    clauseIdx = reason_[varOf(asserting)];
    --counter;
  } while (counter > 0);
  learnt[0] = negate(asserting);

  // Conflict-clause minimisation: drop literals implied by the rest.
  std::uint32_t abstractLevels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstractLevels |= 1u << (level_[varOf(learnt[i])] & 31);
  }
  std::vector<Lit> allMarked(learnt.begin(), learnt.end());
  std::vector<Lit> minimised;
  minimised.push_back(learnt[0]);
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    int var = varOf(learnt[i]);
    if (reason_[var] == kUndef || !litRedundant(learnt[i], abstractLevels)) {
      minimised.push_back(learnt[i]);
    }
  }
  learnt.swap(minimised);

  // Clear every flag set in the resolution walk, including literals that the
  // minimisation dropped (litRedundant cleans up after itself).
  for (Lit l : allMarked) seen_[varOf(l)] = 0;

  // Compute the backtrack level: second-highest level in the clause.
  if (learnt.size() == 1) {
    backtrackLevel = 0;
  } else {
    std::size_t maxIdx = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[varOf(learnt[i])] > level_[varOf(learnt[maxIdx])]) maxIdx = i;
    }
    std::swap(learnt[1], learnt[maxIdx]);
    backtrackLevel = level_[varOf(learnt[1])];
  }
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  std::vector<int> toClear;
  while (!analyzeStack_.empty()) {
    Lit current = analyzeStack_.back();
    analyzeStack_.pop_back();
    const Clause& clause = clauses_[reason_[varOf(current)]];
    for (std::size_t i = 1; i < clause.lits.size(); ++i) {
      Lit p = clause.lits[i];
      int var = varOf(p);
      if (seen_[var] || level_[var] == 0) continue;
      if (reason_[var] == kUndef ||
          ((1u << (level_[var] & 31)) & abstractLevels) == 0) {
        for (int cleared : toClear) seen_[cleared] = 0;
        return false;
      }
      seen_[var] = 1;
      toClear.push_back(var);
      analyzeStack_.push_back(p);
    }
  }
  for (int cleared : toClear) seen_[cleared] = 0;
  return true;
}

void Solver::backtrackTo(int targetLevel) {
  if (currentLevel() <= targetLevel) return;
  int boundary = trailLimits_[targetLevel];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
    int var = varOf(trail_[i]);
    assigns_[var] = kUnassigned;
    reason_[var] = kUndef;
    if (heapPosition_[var] < 0) heapInsert(var);
  }
  trail_.resize(boundary);
  trailLimits_.resize(targetLevel);
  propagationHead_ = boundary;
}

Solver::Lit Solver::pickBranchLit() {
  while (!heapEmpty()) {
    int var = heapPop();
    if (assigns_[var] == kUnassigned) {
      return mkLit(var, savedPhase_[var] != 0);
    }
  }
  return kUndef;
}

void Solver::bumpVar(int var) {
  activity_[var] += varActivityIncrement_;
  if (activity_[var] > kRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    varActivityIncrement_ *= 1e-100;
  }
  if (heapPosition_[var] >= 0) heapUpdate(var);
}

void Solver::bumpClause(int idx) {
  Clause& clause = clauses_[idx];
  clause.activity += clauseActivityIncrement_;
  if (clause.activity > kRescaleLimit) {
    for (int learntIdx : learntIndices_) clauses_[learntIdx].activity *= 1e-100;
    clauseActivityIncrement_ *= 1e-100;
  }
}

void Solver::decayActivities() {
  varActivityIncrement_ /= kVarDecay;
  clauseActivityIncrement_ /= kClauseDecay;
}

void Solver::reduceLearntDb() {
  // Keep the better half (low LBD, high activity); never delete reasons.
  std::vector<int> candidates;
  for (int idx : learntIndices_) {
    if (!clauses_[idx].deleted) candidates.push_back(idx);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const Clause& ca = clauses_[a];
    const Clause& cb = clauses_[b];
    if (ca.lbd != cb.lbd) return ca.lbd < cb.lbd;
    return ca.activity > cb.activity;
  });
  std::vector<bool> isReason(clauses_.size(), false);
  for (Lit l : trail_) {
    int r = reason_[varOf(l)];
    if (r != kUndef) isReason[r] = true;
  }
  for (std::size_t i = candidates.size() / 2; i < candidates.size(); ++i) {
    int idx = candidates[i];
    if (isReason[idx] || clauses_[idx].lbd <= 2) continue;
    clauses_[idx].deleted = true;
    ++stats_.learntDeleted;
    --stats_.liveClauses;
    stats_.liveLiterals -= static_cast<std::int64_t>(clauses_[idx].lits.size());
    clauses_[idx].lits.clear();
    clauses_[idx].lits.shrink_to_fit();
  }
  learntIndices_.assign(candidates.begin(), candidates.end());
  learntIndices_.erase(
      std::remove_if(learntIndices_.begin(), learntIndices_.end(),
                     [&](int idx) { return clauses_[idx].deleted; }),
      learntIndices_.end());
}

void Solver::compactDatabase() {
  if (unsatisfiable_ || currentLevel() != 0) return;
  // Level-0 facts are permanent; their reason clauses are never walked
  // again (conflict analysis skips level-0 literals), so clear the links
  // before purging -- a satisfied reason clause must not outlive as a
  // dangling index.
  for (Lit l : trail_) reason_[varOf(l)] = kUndef;
  bool purgedAny = false;
  for (Clause& clause : clauses_) {
    if (clause.deleted) continue;
    bool satisfied = false;
    for (Lit l : clause.lits) {
      if (level_[varOf(l)] == 0 && litValue(l) == kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) continue;
    clause.deleted = true;
    if (clause.learnt) ++stats_.learntDeleted;
    --stats_.liveClauses;
    stats_.liveLiterals -= static_cast<std::int64_t>(clause.lits.size());
    clause.lits.clear();
    clause.lits.shrink_to_fit();
    purgedAny = true;
  }
  if (!purgedAny) return;
  // Eagerly drop watchers of purged clauses (propagate() would only shed
  // them lazily on traversal) so the watch lists shrink with the database.
  for (std::vector<Watcher>& watchList : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : watchList) {
      if (!clauses_[w.clause].deleted) watchList[keep++] = w;
    }
    watchList.resize(keep);
  }
  learntIndices_.erase(
      std::remove_if(learntIndices_.begin(), learntIndices_.end(),
                     [&](int idx) { return clauses_[idx].deleted; }),
      learntIndices_.end());
}


std::int64_t Solver::luby(std::int64_t i) {
  // MiniSat's formulation: find the finite subsequence containing index i
  // (0-based) and the position of i within it.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1LL << seq;
}

Result Solver::solve(std::int64_t conflictBudget) {
  return solve({}, conflictBudget);
}

Result Solver::solve(const std::vector<int>& assumptions,
                     std::int64_t conflictBudget) {
  // Per-call telemetry export, on every return path: the deltas of the
  // cumulative counters feed the process counters, the live clause-database
  // size the gauges. O(1) per solve (the live fields are maintained
  // incrementally), and compiled away with LCLGRID_TELEMETRY=OFF.
  struct TelemetryExport {
    Solver& self;
    SolverStats before;
    explicit TelemetryExport(Solver& solver)
        : self(solver), before(solver.stats_) {}
    ~TelemetryExport() {
      namespace tm = lclgrid::telemetry;
      static const tm::Counter solves = tm::counter("sat.solves");
      static const tm::Counter conflicts = tm::counter("sat.conflicts");
      static const tm::Counter decisions = tm::counter("sat.decisions");
      static const tm::Counter propagations = tm::counter("sat.propagations");
      static const tm::Counter restarts = tm::counter("sat.restarts");
      static const tm::Counter learnt = tm::counter("sat.learnt_clauses");
      static const tm::Counter deleted = tm::counter("sat.learnt_deleted");
      static const tm::Gauge liveClauses = tm::gauge("sat.live_clauses");
      static const tm::Gauge liveLiterals = tm::gauge("sat.live_literals");
      static const tm::Histogram perSolve =
          tm::histogram("sat.conflicts_per_solve");
      const SolverStats& now = self.stats_;
      solves.increment();
      conflicts.add(now.conflicts - before.conflicts);
      decisions.add(now.decisions - before.decisions);
      propagations.add(now.propagations - before.propagations);
      restarts.add(now.restarts - before.restarts);
      learnt.add(now.learntClauses - before.learntClauses);
      deleted.add(now.learntDeleted - before.learntDeleted);
      liveClauses.set(now.liveClauses);
      liveLiterals.set(now.liveLiterals);
      perSolve.record(now.conflicts - before.conflicts);
    }
  } telemetryExport(*this);
  telemetry::ScopedSpan span("sat/solve");

  conflictCore_.clear();
  if (unsatisfiable_) return Result::Unsat;
  if (propagate() != kUndef) {
    unsatisfiable_ = true;
    return Result::Unsat;
  }

  std::vector<Lit> assumps;
  assumps.reserve(assumptions.size());
  for (int d : assumptions) assumps.push_back(fromDimacs(d));

  std::int64_t restartNumber = 0;
  std::int64_t conflictsUntilRestart = kRestartBase * luby(restartNumber);
  std::int64_t conflictsAtStart = stats_.conflicts;
  std::int64_t learntLimit =
      std::max<std::int64_t>(2000, static_cast<std::int64_t>(clauses_.size()) / 3);

  std::vector<Lit> learnt;
  while (true) {
    int conflictClause = propagate();
    if (conflictClause != kUndef) {
      ++stats_.conflicts;
      if (currentLevel() == 0) {
        unsatisfiable_ = true;
        return Result::Unsat;
      }
      int backtrackLevel = 0;
      analyze(conflictClause, learnt, backtrackLevel);
      backtrackTo(backtrackLevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kUndef);
      } else {
        int idx = addClauseInternal(learnt, /*learnt=*/true);
        enqueue(clauses_[idx].lits[0], idx);
      }
      decayActivities();

      if (conflictBudget >= 0 &&
          stats_.conflicts - conflictsAtStart >= conflictBudget) {
        backtrackTo(0);
        return Result::Unknown;
      }
      if (--conflictsUntilRestart <= 0) {
        ++stats_.restarts;
        ++restartNumber;
        conflictsUntilRestart = kRestartBase * luby(restartNumber);
        backtrackTo(0);
      }
      if (static_cast<std::int64_t>(learntIndices_.size()) > learntLimit) {
        reduceLearntDb();
        learntLimit += learntLimit / 10;
      }
    } else {
      // Place pending assumptions as pseudo-decisions below real decisions;
      // a restart or conflict backjump unwinds them and this loop replays
      // the remainder, so assumptions always occupy the lowest levels.
      Lit next = kUndef;
      while (currentLevel() < static_cast<int>(assumps.size())) {
        Lit p = assumps[static_cast<std::size_t>(currentLevel())];
        std::uint8_t value = litValue(p);
        if (value == kTrue) {
          // Already implied: open an empty level so level indices keep
          // lining up with assumption positions.
          trailLimits_.push_back(static_cast<int>(trail_.size()));
        } else if (value == kFalse) {
          analyzeFinal(p);
          backtrackTo(0);
          return Result::Unsat;  // unsat under assumptions; solver stays ok()
        } else {
          next = p;
          break;
        }
      }
      if (next == kUndef) {
        next = pickBranchLit();
        if (next == kUndef) {  // all variables assigned
          captureModel();
          backtrackTo(0);
          return Result::Sat;
        }
        ++stats_.decisions;
      }
      trailLimits_.push_back(static_cast<int>(trail_.size()));
      enqueue(next, kUndef);
    }
  }
}

void Solver::analyzeFinal(Lit failedAssumption) {
  conflictCore_.clear();
  conflictCore_.push_back(toDimacs(failedAssumption));
  if (currentLevel() == 0) return;
  seen_[varOf(failedAssumption)] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLimits_[0]; --i) {
    int var = varOf(trail_[i]);
    if (!seen_[var]) continue;
    if (reason_[var] == kUndef) {
      // A decision below the first real decision level is an assumption:
      // the trail literal is the assumption as passed by the caller.
      conflictCore_.push_back(toDimacs(trail_[i]));
    } else {
      const Clause& clause = clauses_[reason_[var]];
      for (std::size_t j = 1; j < clause.lits.size(); ++j) {
        int other = varOf(clause.lits[j]);
        if (level_[other] > 0) seen_[other] = 1;
      }
    }
    seen_[var] = 0;
  }
  seen_[varOf(failedAssumption)] = 0;
}

void Solver::captureModel() {
  model_.assign(assigns_.begin(), assigns_.end());
}

bool Solver::modelValue(int dimacsVar) const {
  if (dimacsVar <= 0 ||
      static_cast<std::size_t>(dimacsVar) > model_.size()) {
    throw std::out_of_range("modelValue: unknown variable");
  }
  return model_[static_cast<std::size_t>(dimacsVar) - 1] == kTrue;
}

// --- activity heap -----------------------------------------------------------

void Solver::heapInsert(int var) {
  heapPosition_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heapSiftUp(heapPosition_[var]);
}

void Solver::heapUpdate(int var) { heapSiftUp(heapPosition_[var]); }

int Solver::heapPop() {
  int top = heap_[0];
  heapPosition_[top] = -1;
  int last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heapPosition_[last] = 0;
    heapSiftDown(0);
  }
  return top;
}

void Solver::heapSiftUp(int pos) {
  int var = heap_[pos];
  while (pos > 0) {
    int parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[pos] = heap_[parent];
    heapPosition_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heapPosition_[var] = pos;
}

void Solver::heapSiftDown(int pos) {
  int var = heap_[pos];
  int count = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * pos + 1;
    if (child >= count) break;
    if (child + 1 < count &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[pos] = heap_[child];
    heapPosition_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heapPosition_[var] = pos;
}

}  // namespace lclgrid::sat
