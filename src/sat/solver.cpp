#include "sat/solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "support/telemetry.hpp"

namespace lclgrid::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
// Clause activities live in a float header word, so their rescale limit is
// far below the double-based variable limit (MiniSat uses the same split).
constexpr float kClauseRescaleLimit = 1e20f;
constexpr double kClauseRescaleFactor = 1e-20;
constexpr std::int64_t kRestartBase = 128;
}  // namespace

Solver::Solver() = default;

int Solver::newVar() {
  int var = static_cast<int>(assigns_.size());
  assigns_.push_back(kUnassigned);
  savedPhase_.push_back(1);  // default phase: false (often good for EO encodings)
  level_.push_back(0);
  reason_.push_back(kNullRef);
  activity_.push_back(0.0);
  heapPosition_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(var);
  return var + 1;
}

void Solver::reserveVars(int count) {
  assigns_.reserve(static_cast<std::size_t>(count));
  watches_.reserve(2 * static_cast<std::size_t>(count));
  while (numVars() < count) newVar();
}

Solver::Lit Solver::fromDimacs(int d) const {
  if (d == 0) throw std::invalid_argument("DIMACS literal 0");
  int var = std::abs(d) - 1;
  if (var >= numVars()) throw std::out_of_range("literal for unknown variable");
  return mkLit(var, d < 0);
}

std::uint8_t Solver::litValue(Lit l) const {
  std::uint8_t a = assigns_[varOf(l)];
  if (a == kUnassigned) return kUnassigned;
  return static_cast<std::uint8_t>(a ^ (signOf(l) ? 1 : 0));
}

float Solver::clauseActivity(ClauseRef c) const {
  return std::bit_cast<float>(arena_[c + 2]);
}

void Solver::setClauseActivity(ClauseRef c, float activity) {
  arena_[c + 2] = std::bit_cast<std::uint32_t>(activity);
}

bool Solver::addClause(const std::vector<int>& dimacsLits) {
  if (unsatisfiable_) return false;
  std::vector<Lit> lits;
  lits.reserve(dimacsLits.size());
  for (int d : dimacsLits) lits.push_back(fromDimacs(d));

  // Normalise: sort, remove duplicates, detect tautologies, drop literals
  // already false at level 0 and detect satisfied clauses.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> cleaned;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == negate(lits[i])) return true;
    if (i > 0 && lits[i] == negate(lits[i - 1])) return true;
    std::uint8_t value = litValue(lits[i]);
    if (value == kTrue) return true;  // satisfied at level 0
    if (value == kFalse) continue;    // permanently false literal
    cleaned.push_back(lits[i]);
  }

  if (cleaned.empty()) {
    unsatisfiable_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    enqueue(cleaned[0], kNullRef);
    if (propagate() != kNullRef) {
      unsatisfiable_ = true;
      return false;
    }
    return true;
  }
  addClauseInternal(cleaned, /*learnt=*/false);
  return true;
}

Solver::ClauseRef Solver::addClauseInternal(const std::vector<Lit>& lits,
                                            bool learnt) {
  const std::size_t words = kHeaderWords + lits.size();
  if (arena_.size() + words >= static_cast<std::size_t>(kNullRef)) {
    throw std::length_error("Solver: clause arena exceeds 32-bit refs");
  }
  ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  arena_.resize(arena_.size() + words);
  arena_[ref] = static_cast<std::uint32_t>(lits.size());
  arena_[ref + 1] = learnt ? kLearntFlag : 0;
  setClauseActivity(ref, 0.0f);
  for (std::size_t i = 0; i < lits.size(); ++i) {
    setLitAt(ref, static_cast<std::uint32_t>(i), lits[i]);
  }
  if (learnt) {
    setClauseLbd(ref, computeLbd(lits));
    setClauseActivity(ref, static_cast<float>(clauseActivityIncrement_));
    learntIndices_.push_back(ref);
    ++stats_.learntClauses;
  }
  ++stats_.liveClauses;
  stats_.liveLiterals += static_cast<std::int64_t>(lits.size());
  attachClause(ref);
  return ref;
}

void Solver::attachClause(ClauseRef ref) {
  watches_[negate(litAt(ref, 0))].push_back({ref, litAt(ref, 1)});
  watches_[negate(litAt(ref, 1))].push_back({ref, litAt(ref, 0)});
}

void Solver::enqueue(Lit l, ClauseRef reasonClause) {
  int var = varOf(l);
  assigns_[var] = signOf(l) ? kFalse : kTrue;
  savedPhase_[var] = signOf(l) ? 1 : 0;
  level_[var] = currentLevel();
  reason_[var] = reasonClause;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  // Watch lists never hold deleted clauses: reduceLearntDb() and
  // compactDatabase() scrub eagerly (scrubDeletedWatchers), so the blocker
  // fast path below cannot retain a watcher for a reclaimed clause for as
  // long as its blocker stays true. The deleted check on the slow path is
  // kept as a cheap guard on that invariant.
  while (propagationHead_ < static_cast<int>(trail_.size())) {
    Lit propagated = trail_[propagationHead_++];
    ++stats_.propagations;
    std::vector<Watcher>& watchList = watches_[propagated];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchList.size(); ++i) {
      Watcher w = watchList[i];
      if (litValue(w.blocker) == kTrue) {
        watchList[keep++] = w;
        continue;
      }
      const ClauseRef ref = w.clause;
      if (clauseDeleted(ref)) continue;  // drop watcher for deleted clause
      // Ensure the falsified literal is at position 1.
      Lit falseLit = negate(propagated);
      if (litAt(ref, 0) == falseLit) {
        setLitAt(ref, 0, litAt(ref, 1));
        setLitAt(ref, 1, falseLit);
      }
      Lit first = litAt(ref, 0);
      if (first != w.blocker && litValue(first) == kTrue) {
        watchList[keep++] = {ref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool foundWatch = false;
      const std::uint32_t size = clauseSize(ref);
      for (std::uint32_t j = 2; j < size; ++j) {
        if (litValue(litAt(ref, j)) != kFalse) {
          Lit moved = litAt(ref, j);
          setLitAt(ref, j, litAt(ref, 1));
          setLitAt(ref, 1, moved);
          watches_[negate(moved)].push_back({ref, first});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;
      // Clause is unit or conflicting.
      watchList[keep++] = {ref, first};
      if (litValue(first) == kFalse) {
        // Conflict: keep remaining watchers, signal conflict.
        for (std::size_t j = i + 1; j < watchList.size(); ++j) {
          watchList[keep++] = watchList[j];
        }
        watchList.resize(keep);
        propagationHead_ = static_cast<int>(trail_.size());
        return ref;
      }
      enqueue(first, ref);
    }
    watchList.resize(keep);
  }
  return kNullRef;
}

int Solver::computeLbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels among the literals.
  std::vector<int> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) levels.push_back(level_[varOf(l)]);
  std::sort(levels.begin(), levels.end());
  return static_cast<int>(std::unique(levels.begin(), levels.end()) -
                          levels.begin());
}

void Solver::analyze(ClauseRef conflictClause, std::vector<Lit>& learnt,
                     int& backtrackLevel) {
  learnt.clear();
  learnt.push_back(0);  // placeholder for the asserting literal
  int counter = 0;
  Lit asserting = kUndef;
  int trailIndex = static_cast<int>(trail_.size()) - 1;
  ClauseRef clauseRef = conflictClause;

  // First-UIP resolution walk backwards over the trail.
  do {
    if (clauseLearnt(clauseRef)) bumpClause(clauseRef);
    std::uint32_t start = (asserting == kUndef) ? 0 : 1;
    const std::uint32_t size = clauseSize(clauseRef);
    for (std::uint32_t i = start; i < size; ++i) {
      Lit q = litAt(clauseRef, i);
      int var = varOf(q);
      if (seen_[var] || level_[var] == 0) continue;
      seen_[var] = 1;
      bumpVar(var);
      if (level_[var] == currentLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Find the next literal on the current level to resolve on.
    while (!seen_[varOf(trail_[trailIndex])]) --trailIndex;
    asserting = trail_[trailIndex];
    --trailIndex;
    seen_[varOf(asserting)] = 0;
    clauseRef = reason_[varOf(asserting)];
    --counter;
  } while (counter > 0);
  learnt[0] = negate(asserting);

  // Conflict-clause minimisation: drop literals implied by the rest.
  std::uint32_t abstractLevels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstractLevels |= 1u << (level_[varOf(learnt[i])] & 31);
  }
  std::vector<Lit> allMarked(learnt.begin(), learnt.end());
  std::vector<Lit> minimised;
  minimised.push_back(learnt[0]);
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    int var = varOf(learnt[i]);
    if (reason_[var] == kNullRef || !litRedundant(learnt[i], abstractLevels)) {
      minimised.push_back(learnt[i]);
    }
  }
  learnt.swap(minimised);

  // Clear every flag set in the resolution walk, including literals that the
  // minimisation dropped (litRedundant cleans up after itself).
  for (Lit l : allMarked) seen_[varOf(l)] = 0;

  // Compute the backtrack level: second-highest level in the clause.
  if (learnt.size() == 1) {
    backtrackLevel = 0;
  } else {
    std::size_t maxIdx = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[varOf(learnt[i])] > level_[varOf(learnt[maxIdx])]) maxIdx = i;
    }
    std::swap(learnt[1], learnt[maxIdx]);
    backtrackLevel = level_[varOf(learnt[1])];
  }
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  std::vector<int> toClear;
  while (!analyzeStack_.empty()) {
    Lit current = analyzeStack_.back();
    analyzeStack_.pop_back();
    const ClauseRef ref = reason_[varOf(current)];
    const std::uint32_t size = clauseSize(ref);
    for (std::uint32_t i = 1; i < size; ++i) {
      Lit p = litAt(ref, i);
      int var = varOf(p);
      if (seen_[var] || level_[var] == 0) continue;
      if (reason_[var] == kNullRef ||
          ((1u << (level_[var] & 31)) & abstractLevels) == 0) {
        for (int cleared : toClear) seen_[cleared] = 0;
        return false;
      }
      seen_[var] = 1;
      toClear.push_back(var);
      analyzeStack_.push_back(p);
    }
  }
  for (int cleared : toClear) seen_[cleared] = 0;
  return true;
}

void Solver::backtrackTo(int targetLevel) {
  if (currentLevel() <= targetLevel) return;
  int boundary = trailLimits_[targetLevel];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
    int var = varOf(trail_[i]);
    assigns_[var] = kUnassigned;
    reason_[var] = kNullRef;
    if (heapPosition_[var] < 0) heapInsert(var);
  }
  trail_.resize(boundary);
  trailLimits_.resize(targetLevel);
  propagationHead_ = boundary;
}

Solver::Lit Solver::pickBranchLit() {
  while (!heapEmpty()) {
    int var = heapPop();
    if (assigns_[var] == kUnassigned) {
      return mkLit(var, savedPhase_[var] != 0);
    }
  }
  return kUndef;
}

void Solver::bumpVar(int var) {
  activity_[var] += varActivityIncrement_;
  if (activity_[var] > kRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    varActivityIncrement_ *= 1e-100;
  }
  if (heapPosition_[var] >= 0) heapUpdate(var);
}

void Solver::bumpClause(ClauseRef ref) {
  float bumped =
      clauseActivity(ref) + static_cast<float>(clauseActivityIncrement_);
  setClauseActivity(ref, bumped);
  if (bumped > kClauseRescaleLimit) rescaleClauseActivities();
}

void Solver::rescaleClauseActivities() {
  for (ClauseRef learntRef : learntIndices_) {
    setClauseActivity(learntRef,
                      clauseActivity(learntRef) *
                          static_cast<float>(kClauseRescaleFactor));
  }
  clauseActivityIncrement_ *= kClauseRescaleFactor;
}

void Solver::decayActivities() {
  varActivityIncrement_ /= kVarDecay;
  clauseActivityIncrement_ /= kClauseDecay;
  // The increment itself must stay representable in the float activity
  // header word even when no clause has been bumped for a long stretch.
  if (clauseActivityIncrement_ > static_cast<double>(kClauseRescaleLimit)) {
    rescaleClauseActivities();
  }
}

void Solver::markClauseDeleted(ClauseRef ref) {
  arena_[ref + 1] |= kDeletedFlag;
  wastedWords_ += kHeaderWords + clauseSize(ref);
  --stats_.liveClauses;
  stats_.liveLiterals -= static_cast<std::int64_t>(clauseSize(ref));
}

void Solver::scrubDeletedWatchers() {
  for (std::vector<Watcher>& watchList : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : watchList) {
      if (!clauseDeleted(w.clause)) watchList[keep++] = w;
    }
    watchList.resize(keep);
  }
}

std::size_t Solver::watcherCount() const {
  std::size_t total = 0;
  for (const std::vector<Watcher>& watchList : watches_) {
    total += watchList.size();
  }
  return total;
}

void Solver::reduceLearntDb() {
  // Keep the better half (low LBD, high activity); never delete reasons.
  // Reason clauses are marked with a header flag (cleared again below)
  // instead of a per-call clauses-sized bool buffer.
  std::vector<ClauseRef> candidates;
  for (ClauseRef ref : learntIndices_) {
    if (!clauseDeleted(ref)) candidates.push_back(ref);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              if (clauseLbd(a) != clauseLbd(b)) {
                return clauseLbd(a) < clauseLbd(b);
              }
              return clauseActivity(a) > clauseActivity(b);
            });
  for (Lit l : trail_) {
    ClauseRef r = reason_[varOf(l)];
    if (r != kNullRef) arena_[r + 1] |= kReasonFlag;
  }
  bool deletedAny = false;
  for (std::size_t i = candidates.size() / 2; i < candidates.size(); ++i) {
    ClauseRef ref = candidates[i];
    if ((arena_[ref + 1] & kReasonFlag) || clauseLbd(ref) <= 2) continue;
    markClauseDeleted(ref);
    ++stats_.learntDeleted;
    deletedAny = true;
  }
  for (Lit l : trail_) {
    ClauseRef r = reason_[varOf(l)];
    if (r != kNullRef) arena_[r + 1] &= ~kReasonFlag;
  }
  learntIndices_.assign(candidates.begin(), candidates.end());
  learntIndices_.erase(
      std::remove_if(learntIndices_.begin(), learntIndices_.end(),
                     [this](ClauseRef ref) { return clauseDeleted(ref); }),
      learntIndices_.end());
  if (deletedAny) {
    // Eager watcher hygiene: without this sweep, a watcher whose blocker
    // stays true would keep referencing the reclaimed clause until the
    // blocker is unassigned AND its list happens to be traversed.
    scrubDeletedWatchers();
    maybeGarbageCollect();
  }
}

void Solver::compactDatabase() {
  if (unsatisfiable_ || currentLevel() != 0) return;
  // Level-0 facts are permanent; their reason clauses are never walked
  // again (conflict analysis skips level-0 literals), so clear the links
  // before purging -- a satisfied reason clause must not outlive as a
  // dangling ref.
  for (Lit l : trail_) reason_[varOf(l)] = kNullRef;
  bool purgedAny = false;
  for (ClauseRef ref = 0; ref < static_cast<ClauseRef>(arena_.size());
       ref += kHeaderWords + clauseSize(ref)) {
    if (clauseDeleted(ref)) continue;
    bool satisfied = false;
    const std::uint32_t size = clauseSize(ref);
    for (std::uint32_t i = 0; i < size; ++i) {
      Lit l = litAt(ref, i);
      if (level_[varOf(l)] == 0 && litValue(l) == kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) continue;
    markClauseDeleted(ref);
    if (clauseLearnt(ref)) ++stats_.learntDeleted;
    purgedAny = true;
  }
  if (!purgedAny) return;
  // Eagerly drop watchers of purged clauses (propagate() would only shed
  // them lazily on traversal) so the watch lists shrink with the database.
  scrubDeletedWatchers();
  learntIndices_.erase(
      std::remove_if(learntIndices_.begin(), learntIndices_.end(),
                     [this](ClauseRef ref) { return clauseDeleted(ref); }),
      learntIndices_.end());
  maybeGarbageCollect();
}

void Solver::maybeGarbageCollect() {
  if (wastedWords_ == 0) return;
  if (static_cast<double>(wastedWords_) <
      gcDeadFraction_ * static_cast<double>(arena_.size())) {
    return;
  }
  garbageCollect();
}

void Solver::garbageCollect() {
  // Mark-and-compact into a fresh buffer: walk the old arena in address
  // order, copy each live clause forward, and leave a forwarding ref in the
  // old header (kRelocatedFlag + word 2). Then every live reference --
  // watch lists, reasons, learnt indices -- is rewritten through the
  // forwarding refs. References move, clauses never change, so every
  // caller-facing contract (cores, models, Unknown resume, stats) is
  // untouched; the fuzz suite drives this with a tiny threshold.
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wastedWords_);
  for (std::size_t ref = 0; ref < arena_.size();) {
    const std::size_t words = kHeaderWords + arena_[ref];
    if (!(arena_[ref + 1] & kDeletedFlag)) {
      const ClauseRef newRef = static_cast<ClauseRef>(to.size());
      to.insert(to.end(), arena_.begin() + static_cast<std::ptrdiff_t>(ref),
                arena_.begin() + static_cast<std::ptrdiff_t>(ref + words));
      arena_[ref + 1] |= kRelocatedFlag;
      arena_[ref + 2] = newRef;
    }
    ref += words;
  }
  for (std::vector<Watcher>& watchList : watches_) {
    std::size_t keep = 0;
    for (Watcher w : watchList) {
      if (arena_[w.clause + 1] & kRelocatedFlag) {
        w.clause = arena_[w.clause + 2];
        watchList[keep++] = w;
      }
      // else: deleted clause; the eager scrub already dropped these, but
      // dropping here too keeps GC safe from any future lazy caller.
    }
    watchList.resize(keep);
  }
  for (ClauseRef& r : reason_) {
    if (r == kNullRef) continue;
    // Live reasons are never deleted (reduceLearntDb marks them, and
    // compactDatabase detaches level-0 reasons before purging).
    assert(arena_[r + 1] & kRelocatedFlag);
    r = arena_[r + 2];
  }
  for (ClauseRef& r : learntIndices_) {
    assert(arena_[r + 1] & kRelocatedFlag);
    r = arena_[r + 2];
  }
  arena_.swap(to);
  wastedWords_ = 0;
  ++stats_.gcRuns;
}

std::int64_t Solver::luby(std::int64_t i) {
  // MiniSat's formulation: find the finite subsequence containing index i
  // (0-based) and the position of i within it.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1LL << seq;
}

Result Solver::solve(std::int64_t conflictBudget) {
  return solve({}, conflictBudget);
}

Result Solver::solve(const std::vector<int>& assumptions,
                     std::int64_t conflictBudget) {
  // Per-call telemetry export, on every return path: the deltas of the
  // cumulative counters feed the process counters, the live clause-database
  // size the gauges. O(1) per solve (the live fields are maintained
  // incrementally), and compiled away with LCLGRID_TELEMETRY=OFF.
  struct TelemetryExport {
    Solver& self;
    SolverStats before;
    explicit TelemetryExport(Solver& solver)
        : self(solver), before(solver.stats_) {}
    ~TelemetryExport() {
      namespace tm = lclgrid::telemetry;
      static const tm::Counter solves = tm::counter("sat.solves");
      static const tm::Counter conflicts = tm::counter("sat.conflicts");
      static const tm::Counter decisions = tm::counter("sat.decisions");
      static const tm::Counter propagations = tm::counter("sat.propagations");
      static const tm::Counter restarts = tm::counter("sat.restarts");
      static const tm::Counter learnt = tm::counter("sat.learnt_clauses");
      static const tm::Counter deleted = tm::counter("sat.learnt_deleted");
      static const tm::Counter gcRuns = tm::counter("sat.gc_runs");
      static const tm::Gauge liveClauses = tm::gauge("sat.live_clauses");
      static const tm::Gauge liveLiterals = tm::gauge("sat.live_literals");
      static const tm::Gauge arenaBytes = tm::gauge("sat.arena_bytes");
      static const tm::Histogram perSolve =
          tm::histogram("sat.conflicts_per_solve");
      const SolverStats& now = self.stats_;
      solves.increment();
      conflicts.add(now.conflicts - before.conflicts);
      decisions.add(now.decisions - before.decisions);
      propagations.add(now.propagations - before.propagations);
      restarts.add(now.restarts - before.restarts);
      learnt.add(now.learntClauses - before.learntClauses);
      deleted.add(now.learntDeleted - before.learntDeleted);
      gcRuns.add(now.gcRuns - before.gcRuns);
      liveClauses.set(now.liveClauses);
      liveLiterals.set(now.liveLiterals);
      arenaBytes.set(static_cast<std::int64_t>(self.arenaBytes()));
      perSolve.record(now.conflicts - before.conflicts);
    }
  } telemetryExport(*this);
  telemetry::ScopedSpan span("sat/solve");

  conflictCore_.clear();
  if (unsatisfiable_) return Result::Unsat;
  if (propagate() != kNullRef) {
    unsatisfiable_ = true;
    return Result::Unsat;
  }

  std::vector<Lit> assumps;
  assumps.reserve(assumptions.size());
  for (int d : assumptions) assumps.push_back(fromDimacs(d));

  std::int64_t restartNumber = 0;
  std::int64_t conflictsUntilRestart = kRestartBase * luby(restartNumber);
  std::int64_t conflictsAtStart = stats_.conflicts;
  std::int64_t learntLimit =
      std::max<std::int64_t>(2000, stats_.liveClauses / 3);

  std::vector<Lit> learnt;
  while (true) {
    ClauseRef conflictClause = propagate();
    if (conflictClause != kNullRef) {
      ++stats_.conflicts;
      if (currentLevel() == 0) {
        unsatisfiable_ = true;
        return Result::Unsat;
      }
      int backtrackLevel = 0;
      analyze(conflictClause, learnt, backtrackLevel);
      backtrackTo(backtrackLevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNullRef);
      } else {
        ClauseRef ref = addClauseInternal(learnt, /*learnt=*/true);
        enqueue(litAt(ref, 0), ref);
      }
      decayActivities();

      if (conflictBudget >= 0 &&
          stats_.conflicts - conflictsAtStart >= conflictBudget) {
        backtrackTo(0);
        return Result::Unknown;
      }
      if (--conflictsUntilRestart <= 0) {
        ++stats_.restarts;
        ++restartNumber;
        conflictsUntilRestart = kRestartBase * luby(restartNumber);
        backtrackTo(0);
      }
      if (static_cast<std::int64_t>(learntIndices_.size()) > learntLimit) {
        reduceLearntDb();
        learntLimit += learntLimit / 10;
      }
    } else {
      // Place pending assumptions as pseudo-decisions below real decisions;
      // a restart or conflict backjump unwinds them and this loop replays
      // the remainder, so assumptions always occupy the lowest levels.
      Lit next = kUndef;
      while (currentLevel() < static_cast<int>(assumps.size())) {
        Lit p = assumps[static_cast<std::size_t>(currentLevel())];
        std::uint8_t value = litValue(p);
        if (value == kTrue) {
          // Already implied: open an empty level so level indices keep
          // lining up with assumption positions.
          trailLimits_.push_back(static_cast<int>(trail_.size()));
        } else if (value == kFalse) {
          analyzeFinal(p);
          backtrackTo(0);
          return Result::Unsat;  // unsat under assumptions; solver stays ok()
        } else {
          next = p;
          break;
        }
      }
      if (next == kUndef) {
        next = pickBranchLit();
        if (next == kUndef) {  // all variables assigned
          captureModel();
          backtrackTo(0);
          return Result::Sat;
        }
        ++stats_.decisions;
      }
      trailLimits_.push_back(static_cast<int>(trail_.size()));
      enqueue(next, kNullRef);
    }
  }
}

void Solver::analyzeFinal(Lit failedAssumption) {
  conflictCore_.clear();
  conflictCore_.push_back(toDimacs(failedAssumption));
  if (currentLevel() == 0) return;
  seen_[varOf(failedAssumption)] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLimits_[0]; --i) {
    int var = varOf(trail_[i]);
    if (!seen_[var]) continue;
    if (reason_[var] == kNullRef) {
      // A decision below the first real decision level is an assumption:
      // the trail literal is the assumption as passed by the caller.
      conflictCore_.push_back(toDimacs(trail_[i]));
    } else {
      const ClauseRef ref = reason_[var];
      const std::uint32_t size = clauseSize(ref);
      for (std::uint32_t j = 1; j < size; ++j) {
        int other = varOf(litAt(ref, j));
        if (level_[other] > 0) seen_[other] = 1;
      }
    }
    seen_[var] = 0;
  }
  seen_[varOf(failedAssumption)] = 0;
}

void Solver::captureModel() {
  model_.assign(assigns_.begin(), assigns_.end());
}

bool Solver::modelValue(int dimacsVar) const {
  if (dimacsVar <= 0 ||
      static_cast<std::size_t>(dimacsVar) > model_.size()) {
    throw std::out_of_range("modelValue: unknown variable");
  }
  return model_[static_cast<std::size_t>(dimacsVar) - 1] == kTrue;
}

// --- activity heap -----------------------------------------------------------

void Solver::heapInsert(int var) {
  heapPosition_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heapSiftUp(heapPosition_[var]);
}

void Solver::heapUpdate(int var) { heapSiftUp(heapPosition_[var]); }

int Solver::heapPop() {
  int top = heap_[0];
  heapPosition_[top] = -1;
  int last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heapPosition_[last] = 0;
    heapSiftDown(0);
  }
  return top;
}

void Solver::heapSiftUp(int pos) {
  int var = heap_[pos];
  while (pos > 0) {
    int parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[pos] = heap_[parent];
    heapPosition_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heapPosition_[var] = pos;
}

void Solver::heapSiftDown(int pos) {
  int var = heap_[pos];
  int count = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * pos + 1;
    if (child >= count) break;
    if (child + 1 < count &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[pos] = heap_[child];
    heapPosition_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heapPosition_[var] = pos;
}

}  // namespace lclgrid::sat
