#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

namespace lclgrid::sat {

Cnf parseDimacs(std::istream& in) {
  Cnf cnf;
  std::string token;
  bool headerSeen = false;
  std::vector<int> current;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string format;
      int declaredClauses = 0;
      if (!(in >> format >> cnf.numVars >> declaredClauses) || format != "cnf") {
        throw std::runtime_error("parseDimacs: malformed header");
      }
      headerSeen = true;
      continue;
    }
    if (!headerSeen) throw std::runtime_error("parseDimacs: literal before header");
    int lit = std::stoi(token);
    if (lit == 0) {
      cnf.clauses.push_back(current);
      current.clear();
    } else {
      if (std::abs(lit) > cnf.numVars) {
        throw std::runtime_error("parseDimacs: literal out of range");
      }
      current.push_back(lit);
    }
  }
  if (!current.empty()) throw std::runtime_error("parseDimacs: unterminated clause");
  return cnf;
}

Cnf parseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return parseDimacs(in);
}

void loadInto(const Cnf& cnf, Solver& solver) {
  if (solver.numVars() != 0) {
    throw std::invalid_argument("loadInto: solver must be empty");
  }
  solver.reserveVars(cnf.numVars);
  for (const auto& clause : cnf.clauses) solver.addClause(clause);
}

std::string toDimacsString(const Cnf& cnf) {
  std::ostringstream os;
  os << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
  for (const auto& clause : cnf.clauses) {
    for (int lit : clause) os << lit << " ";
    os << "0\n";
  }
  return os.str();
}

}  // namespace lclgrid::sat
