#include "sat/dimacs.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lclgrid::sat {

namespace {

/// Parses a whole token as a decimal int. DIMACS gives no licence for
/// trailing garbage, so "12x" is an error naming the offending token, not
/// a silent 12 -- and overflowing values report as out of range instead of
/// surfacing a bare std::out_of_range from stoi.
int parseIntToken(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(token, &consumed);
  } catch (const std::invalid_argument&) {
    throw std::runtime_error(std::string("parseDimacs: expected ") + what +
                             ", got \"" + token + "\"");
  } catch (const std::out_of_range&) {
    throw std::runtime_error(std::string("parseDimacs: ") + what +
                             " out of int range: \"" + token + "\"");
  }
  if (consumed != token.size()) {
    throw std::runtime_error(std::string("parseDimacs: trailing characters in ") +
                             what + " \"" + token + "\"");
  }
  return value;
}

}  // namespace

Cnf parseDimacs(std::istream& in) {
  Cnf cnf;
  std::string token;
  bool headerSeen = false;
  std::vector<int> current;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      if (headerSeen) {
        throw std::runtime_error("parseDimacs: duplicate \"p cnf\" header");
      }
      std::string format;
      std::string varsToken;
      std::string clausesToken;
      if (!(in >> format >> varsToken >> clausesToken)) {
        throw std::runtime_error(
            "parseDimacs: truncated header (expected \"p cnf <vars> "
            "<clauses>\")");
      }
      if (format != "cnf") {
        throw std::runtime_error("parseDimacs: header format \"" + format +
                                 "\" is not \"cnf\"");
      }
      cnf.numVars = parseIntToken(varsToken, "header variable count");
      const int declaredClauses =
          parseIntToken(clausesToken, "header clause count");
      if (cnf.numVars < 0 || declaredClauses < 0) {
        throw std::runtime_error("parseDimacs: negative count in header");
      }
      headerSeen = true;
      continue;
    }
    if (!headerSeen) {
      throw std::runtime_error(
          "parseDimacs: literal before \"p cnf\" header (or header missing)");
    }
    const int lit = parseIntToken(token, "literal");
    if (lit == 0) {
      cnf.clauses.push_back(current);
      current.clear();
    } else {
      if (lit == std::numeric_limits<int>::min() ||
          std::abs(lit) > cnf.numVars) {
        throw std::runtime_error("parseDimacs: literal " + token +
                                 " out of range for " +
                                 std::to_string(cnf.numVars) + " variables");
      }
      current.push_back(lit);
    }
  }
  if (!headerSeen) {
    throw std::runtime_error("parseDimacs: missing \"p cnf\" header");
  }
  if (!current.empty()) {
    throw std::runtime_error(
        "parseDimacs: unterminated clause (missing trailing 0)");
  }
  return cnf;
}

Cnf parseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return parseDimacs(in);
}

void loadInto(const Cnf& cnf, Solver& solver) {
  if (solver.numVars() != 0) {
    throw std::invalid_argument("loadInto: solver must be empty");
  }
  solver.reserveVars(cnf.numVars);
  for (const auto& clause : cnf.clauses) solver.addClause(clause);
}

std::string toDimacsString(const Cnf& cnf) {
  std::ostringstream os;
  os << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
  for (const auto& clause : cnf.clauses) {
    for (int lit : clause) os << lit << " ";
    os << "0\n";
  }
  return os.str();
}

}  // namespace lclgrid::sat
