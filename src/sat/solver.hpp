// A self-contained CDCL SAT solver. This is the "modern SAT solver" substrate
// of Section 7 (synthesis reduces to a combinatorial constraint-satisfaction
// problem "solved with modern SAT solvers in a matter of seconds") and is
// also used for the global brute-force baseline and infeasibility proofs
// (e.g. Theorem 21: no 2d-edge-colouring for odd n).
//
// Features: two-watched-literal propagation, first-UIP conflict analysis with
// recursive clause minimisation, VSIDS branching with a binary heap, phase
// saving, Luby restarts, and activity/LBD-based learnt-clause reduction.
//
// Clause storage is an arena (docs/sat.md): every clause lives inline in one
// contiguous uint32_t buffer -- three header words (size; learnt/deleted
// flags + LBD; activity) followed by the literals -- addressed by 32-bit
// ClauseRef offsets. BCP therefore walks one flat allocation instead of
// chasing per-clause heap pointers. Deletion only flags a clause; a
// mark-and-compact garbage collection reclaims the dead space (and remaps
// every live reference: watch lists, reasons, learnt indices) once the dead
// fraction of the arena crosses a threshold.
//
// External literal convention follows DIMACS: variables are 1-based, a
// negative integer denotes negation. addClause({}) makes the formula
// unsatisfiable.
//
// Incremental contract: a Solver is a live object, not a one-shot decision
// procedure. Every solve() call leaves the solver at decision level 0 with
// the clause database (original and learnt) intact, so a caller may freely
// interleave newVar / addClause / solve:
//  * solve(assumptions): decides the formula under a conjunction of
//    assumption literals, placed as pseudo-decisions below all search
//    decisions. Learnt clauses never depend on assumptions (conflict
//    analysis resolves them like decisions), so everything learnt in one
//    call soundly persists into every later call -- this is what makes
//    re-solving a growing formula cheap (the synthesis ladder, the seeded
//    branch enumeration of solveGlobally, budget-staged deepening).
//  * After Result::Sat, modelValue() reads a snapshot of the model; the
//    trail itself is already unwound, so addClause / solve may follow
//    immediately.
//  * After Result::Unsat under assumptions, conflictCore() names the guilty
//    subset of the assumptions; the solver stays usable (the formula itself
//    is not marked unsatisfiable unless it is unsat under *no* assumptions,
//    in which case the core is empty).
//  * After Result::Unknown (conflict budget exhausted) the solver is back
//    at level 0 with all clauses -- original and learnt -- retained and
//    statistics advanced; any later call is valid, and re-solving with a
//    larger (or no) budget resumes from the learnt state rather than from
//    scratch. Unknown never corrupts or forgets anything.
// Arena garbage collection preserves all of the above: it moves bytes and
// rewrites references, never the clause set, so it is invisible to every
// caller-facing contract (assumption cores, Unknown resume, ClauseGroup
// retire/commit).
// Activation-literal clause groups (push/pop-style scoped clauses) are
// layered on top of assumptions by cnf.hpp's ClauseGroup.
//
// Thread-safety contract: a Solver instance is single-threaded (every call
// mutates instance state), but all state is per-instance -- no globals, no
// caches shared between solvers -- so distinct instances run concurrently
// on engine pool threads without synchronisation. This is what lets the
// family sweep driver run one synthesis/probe pipeline per thread: each
// pool task owns its solvers (IncrementalSynthesizer, FeasibilityProber)
// outright and never shares them across tasks.
#pragma once

#include <cstdint>
#include <vector>

namespace lclgrid::sat {

enum class Result { Sat, Unsat, Unknown };

/// One coherent snapshot of a Solver's lifetime statistics
/// (Solver::snapshotStats()). The cumulative fields only ever grow across
/// solve() calls -- including calls that return Unknown (the incremental
/// contract retains everything learnt); the live fields track the clause
/// database as reduceLearntDb() / compactDatabase() shrink it, so
/// liveClauses <= (original clauses + learntClauses - learntDeleted).
/// Consumed by bench_sat and exported to support/telemetry.hpp counters
/// ("sat.conflicts", ...) and gauges ("sat.live_clauses", ...) after every
/// solve() call.
struct SolverStats {
  std::int64_t conflicts = 0;     ///< conflicts hit (cumulative)
  std::int64_t decisions = 0;     ///< branching decisions made (cumulative)
  std::int64_t propagations = 0;  ///< unit propagations (cumulative)
  std::int64_t restarts = 0;      ///< Luby restarts performed (cumulative)
  std::int64_t learntClauses = 0; ///< learnt clauses ever added (cumulative)
  /// Learnt clauses deleted again, by activity/LBD reduction
  /// (reduceLearntDb) or level-0 satisfaction purging (compactDatabase).
  std::int64_t learntDeleted = 0;
  std::int64_t liveClauses = 0;   ///< current live clauses (original + learnt)
  std::int64_t liveLiterals = 0;  ///< literals the live database pins
  std::int64_t gcRuns = 0;        ///< arena garbage collections (cumulative)
  /// Current clause-arena footprint in bytes (headers + literals, live and
  /// not-yet-collected dead space). Shrinks when garbage collection runs.
  std::int64_t arenaBytes = 0;
};

class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns its (1-based) DIMACS index.
  int newVar();
  /// Ensures variables 1..count exist (no-op when numVars() >= count).
  /// Incremental encoders reserve their block up front so DIMACS literals
  /// can be laid out before any clause is added.
  void reserveVars(int count);
  int numVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause of DIMACS literals. Returns false if the solver is
  /// already in an unsatisfiable state (the clause is still recorded
  /// conceptually). Variables must have been created with newVar().
  bool addClause(const std::vector<int>& dimacsLits);

  /// Solves the formula. conflictBudget < 0 means no limit.
  Result solve(std::int64_t conflictBudget = -1);

  /// Solves the formula under a conjunction of assumption literals
  /// (DIMACS convention). On Unsat, conflictCore() holds the guilty subset
  /// of the assumptions; an empty core means the formula is unsat on its
  /// own. conflictBudget < 0 means no limit; the budget counts conflicts
  /// of this call only.
  Result solve(const std::vector<int>& assumptions,
               std::int64_t conflictBudget);

  /// The final-conflict core of the most recent solve() that returned
  /// Unsat: a subset of the assumption literals passed to that call whose
  /// conjunction is inconsistent with the formula. Empty when the formula
  /// is unsatisfiable without any assumptions.
  const std::vector<int>& conflictCore() const { return conflictCore_; }

  /// True until the formula itself (independent of any assumptions) has
  /// been proven unsatisfiable.
  bool ok() const { return !unsatisfiable_; }

  /// Clause-database compaction for long-lived solvers: purges every
  /// clause (original or learnt) satisfied by a level-0 assignment --
  /// in particular whole retired activation groups, whose clauses all
  /// contain the now-true negated guard -- and eagerly drops their
  /// watchers. A no-op unless the solver is at decision level 0 (where
  /// every solve() leaves it) and still ok(). Level-0 facts need no
  /// reason clause, so purged reasons are detached safely. Called by
  /// ClauseGroup::retire(); safe to call at any other quiescent point.
  /// Runs arena garbage collection afterwards when the dead fraction
  /// crosses the threshold (setGcDeadFraction).
  void compactDatabase();

  /// Activity/LBD learnt-clause reduction: flags the worse half of the
  /// learnt clauses (high LBD, low activity; reasons and LBD <= 2 glue
  /// clauses are kept) as deleted and scrubs their watchers. Triggered
  /// internally when the learnt database outgrows its limit; public so
  /// long-running hosts and the watcher-hygiene regression tests can force
  /// a reduction at a point of their choosing. Safe at any decision level.
  void reduceLearntDb();

  /// Clauses not yet purged or reduced away (original + learnt): the live
  /// clause database the propagation loop still walks.
  std::size_t liveClauses() const {
    return static_cast<std::size_t>(stats_.liveClauses);
  }
  /// Total literal count over the live clauses -- the memory the database
  /// actually pins; compactDatabase() shrinks this.
  std::size_t liveLiterals() const {
    return static_cast<std::size_t>(stats_.liveLiterals);
  }
  /// Current arena footprint in bytes (live clauses plus dead space not
  /// yet garbage-collected).
  std::size_t arenaBytes() const {
    return arena_.size() * sizeof(std::uint32_t);
  }
  /// Arena garbage collections performed so far.
  std::int64_t gcRuns() const { return stats_.gcRuns; }
  /// Total entries across all watch lists. With eager watcher scrubbing
  /// (reduceLearntDb / compactDatabase) this is exactly 2 * liveClauses():
  /// the invariant the watcher-hygiene regression tests pin down.
  std::size_t watcherCount() const;

  /// Test hook: sets the dead fraction of the arena that triggers garbage
  /// collection after reduceLearntDb() / compactDatabase() (default 0.25).
  /// A tiny value forces a collection after nearly every deletion, which
  /// is how the GC fuzz tests exercise reference remapping constantly.
  void setGcDeadFraction(double fraction) { gcDeadFraction_ = fraction; }

  /// Value of a variable in the model snapshot taken when solve() last
  /// returned Sat. Variables created after that solve have no model value.
  bool modelValue(int dimacsVar) const;

  // --- statistics ---
  /// The full statistics snapshot (see SolverStats); the scalar accessors
  /// below remain as shorthands for the common fields.
  SolverStats snapshotStats() const {
    SolverStats stats = stats_;
    stats.arenaBytes = static_cast<std::int64_t>(arenaBytes());
    return stats;
  }
  std::int64_t conflicts() const { return stats_.conflicts; }
  std::int64_t decisions() const { return stats_.decisions; }
  std::int64_t propagations() const { return stats_.propagations; }
  std::int64_t restarts() const { return stats_.restarts; }
  std::int64_t learntClauses() const { return stats_.learntClauses; }
  std::int64_t learntDeleted() const { return stats_.learntDeleted; }

 private:
  // Internal literal encoding: lit = 2*var + (negated ? 1 : 0), var 0-based.
  using Lit = int;
  static constexpr int kUndef = -1;
  enum : std::uint8_t { kTrue = 0, kFalse = 1, kUnassigned = 2 };

  static Lit mkLit(int var, bool neg) { return 2 * var + (neg ? 1 : 0); }
  static int varOf(Lit l) { return l >> 1; }
  static bool signOf(Lit l) { return l & 1; }
  static Lit negate(Lit l) { return l ^ 1; }
  Lit fromDimacs(int d) const;

  // --- arena clause store ---------------------------------------------------
  // A clause is kHeaderWords uint32_t header words followed by its literals,
  // all inline in arena_; a ClauseRef is the word offset of the header.
  //   word 0: literal count
  //   word 1: flag bits (kLearntFlag/kDeletedFlag/kReasonFlag/kRelocatedFlag)
  //           with the LBD in the bits above kLbdShift
  //   word 2: activity as a float bit pattern; during garbage collection the
  //           forwarding ClauseRef of a relocated clause
  // Deleted clauses keep their size word so sequential arena walks stay
  // possible; garbage collection reclaims their space.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullRef = 0xFFFFFFFFu;
  static constexpr std::uint32_t kHeaderWords = 3;
  static constexpr std::uint32_t kLearntFlag = 1u << 0;
  static constexpr std::uint32_t kDeletedFlag = 1u << 1;
  // Scratch marks: kReasonFlag protects locked clauses inside one
  // reduceLearntDb() pass; kRelocatedFlag marks forwarded clauses inside
  // one garbageCollect() pass. Both are cleared before the pass returns.
  static constexpr std::uint32_t kReasonFlag = 1u << 2;
  static constexpr std::uint32_t kRelocatedFlag = 1u << 3;
  static constexpr std::uint32_t kLbdShift = 4;

  std::uint32_t clauseSize(ClauseRef c) const { return arena_[c]; }
  bool clauseLearnt(ClauseRef c) const { return arena_[c + 1] & kLearntFlag; }
  bool clauseDeleted(ClauseRef c) const {
    return arena_[c + 1] & kDeletedFlag;
  }
  int clauseLbd(ClauseRef c) const {
    return static_cast<int>(arena_[c + 1] >> kLbdShift);
  }
  void setClauseLbd(ClauseRef c, int lbd) {
    arena_[c + 1] = (arena_[c + 1] & ((1u << kLbdShift) - 1)) |
                    (static_cast<std::uint32_t>(lbd) << kLbdShift);
  }
  float clauseActivity(ClauseRef c) const;
  void setClauseActivity(ClauseRef c, float activity);
  Lit litAt(ClauseRef c, std::uint32_t i) const {
    return static_cast<Lit>(arena_[c + kHeaderWords + i]);
  }
  void setLitAt(ClauseRef c, std::uint32_t i, Lit l) {
    arena_[c + kHeaderWords + i] = static_cast<std::uint32_t>(l);
  }
  /// Flags the clause deleted and accounts the space as reclaimable.
  void markClauseDeleted(ClauseRef c);
  /// Drops every watch-list entry that points at a deleted clause. Shared
  /// by reduceLearntDb() and compactDatabase() so watch lists shrink with
  /// the database instead of retaining entries for reclaimed clauses
  /// behind a still-true blocker.
  void scrubDeletedWatchers();
  /// Mark-and-compact garbage collection: copies live clauses into a fresh
  /// buffer and remaps watches_ / reason_ / learntIndices_ through
  /// forwarding refs left in the old headers. Runs when the dead fraction
  /// crosses gcDeadFraction_ (see maybeGarbageCollect).
  void garbageCollect();
  void maybeGarbageCollect();

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  static int toDimacs(Lit l) { return signOf(l) ? -(varOf(l) + 1) : varOf(l) + 1; }
  std::uint8_t litValue(Lit l) const;
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();  // returns conflicting clause ref or kNullRef
  void analyze(ClauseRef conflictClause, std::vector<Lit>& learnt,
               int& backtrackLevel);
  /// Final-conflict analysis for a falsified assumption: collects the
  /// assumption decisions that imply the falsification into conflictCore_.
  void analyzeFinal(Lit failedAssumption);
  void captureModel();
  bool litRedundant(Lit l, std::uint32_t abstractLevels);
  void backtrackTo(int level);
  Lit pickBranchLit();
  ClauseRef addClauseInternal(const std::vector<Lit>& lits, bool learnt);
  void attachClause(ClauseRef ref);
  void bumpVar(int var);
  void bumpClause(ClauseRef ref);
  void rescaleClauseActivities();
  void decayActivities();
  int currentLevel() const { return static_cast<int>(trailLimits_.size()); }
  int computeLbd(const std::vector<Lit>& lits);
  static std::int64_t luby(std::int64_t i);

  // Heap keyed by activity (max-heap).
  void heapInsert(int var);
  void heapUpdate(int var);
  int heapPop();
  bool heapEmpty() const { return heap_.empty(); }
  void heapSiftUp(int pos);
  void heapSiftDown(int pos);

  std::vector<std::uint32_t> arena_;  // the clause store (see layout above)
  std::uint32_t wastedWords_ = 0;     // words held by deleted clauses
  double gcDeadFraction_ = 0.25;      // GC trigger threshold
  std::vector<std::vector<Watcher>> watches_;  // indexed by internal literal
  std::vector<std::uint8_t> assigns_;          // per var: kTrue/kFalse/kUnassigned
  std::vector<std::uint8_t> savedPhase_;       // per var: last assigned sign
  std::vector<int> level_;                     // per var
  std::vector<ClauseRef> reason_;  // per var: clause ref or kNullRef
  std::vector<Lit> trail_;
  std::vector<int> trailLimits_;
  int propagationHead_ = 0;

  std::vector<double> activity_;
  double varActivityIncrement_ = 1.0;
  double clauseActivityIncrement_ = 1.0;
  std::vector<int> heap_;
  std::vector<int> heapPosition_;  // per var; -1 if absent

  std::vector<std::uint8_t> seen_;  // scratch for analyze
  std::vector<Lit> analyzeStack_;

  std::vector<ClauseRef> learntIndices_;
  std::vector<std::uint8_t> model_;  // snapshot of assigns_ at the last Sat
  std::vector<int> conflictCore_;    // DIMACS lits; see conflictCore()
  bool unsatisfiable_ = false;
  // Cumulative fields advance in-place on the hot paths; the live fields
  // are maintained incrementally by addClauseInternal / reduceLearntDb /
  // compactDatabase so snapshotStats() and liveClauses() are O(1).
  SolverStats stats_;
};

}  // namespace lclgrid::sat
