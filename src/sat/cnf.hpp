// Small CNF-encoding helpers on top of the Solver: variable blocks for
// finite-domain variables and the standard exactly-one / at-most-one
// encodings used by the synthesis and global-solver reductions.
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace lclgrid::sat {

/// A block of `domain` Boolean variables representing one finite-domain
/// variable with values {0, ..., domain-1} (one-hot encoding).
class DomainVar {
 public:
  DomainVar() = default;
  DomainVar(Solver& solver, int domain);

  int domain() const { return static_cast<int>(vars_.size()); }
  /// DIMACS literal asserting "this variable takes value v".
  int is(int v) const { return vars_[v]; }
  /// DIMACS literal asserting "this variable does not take value v".
  int isNot(int v) const { return -vars_[v]; }
  /// Decoded value from the solver model (requires a Sat result).
  int decode(const Solver& solver) const;

 private:
  std::vector<int> vars_;
};

/// Adds clauses enforcing at least one of the literals.
void addAtLeastOne(Solver& solver, const std::vector<int>& lits);
/// Adds pairwise at-most-one clauses (fine for the small domains used here).
void addAtMostOne(Solver& solver, const std::vector<int>& lits);
void addExactlyOne(Solver& solver, const std::vector<int>& lits);

/// Creates a one-hot domain variable with its exactly-one constraint.
DomainVar makeDomainVar(Solver& solver, int domain);

}  // namespace lclgrid::sat
