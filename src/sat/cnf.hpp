// Small CNF-encoding helpers on top of the Solver: variable blocks for
// finite-domain variables and the standard exactly-one / at-most-one
// encodings used by the synthesis and global-solver reductions.
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace lclgrid::sat {

/// A block of `domain` Boolean variables representing one finite-domain
/// variable with values {0, ..., domain-1} (one-hot encoding).
class DomainVar {
 public:
  DomainVar() = default;
  DomainVar(Solver& solver, int domain);

  int domain() const { return static_cast<int>(vars_.size()); }
  /// DIMACS literal asserting "this variable takes value v".
  int is(int v) const { return vars_[v]; }
  /// DIMACS literal asserting "this variable does not take value v".
  int isNot(int v) const { return -vars_[v]; }
  /// Decoded value from the solver model (requires a Sat result).
  int decode(const Solver& solver) const;

 private:
  std::vector<int> vars_;
};

/// Adds clauses enforcing at least one of the literals.
void addAtLeastOne(Solver& solver, const std::vector<int>& lits);
/// Adds pairwise at-most-one clauses (fine for the small domains used here).
void addAtMostOne(Solver& solver, const std::vector<int>& lits);
void addExactlyOne(Solver& solver, const std::vector<int>& lits);

/// Creates a one-hot domain variable with its exactly-one constraint.
DomainVar makeDomainVar(Solver& solver, int domain);

/// A push/pop-style activation-literal layer: clauses added through a group
/// carry the negated guard literal, so they only constrain solves that pass
/// the group's activation() literal in their assumption set. This turns the
/// incremental solver's assumptions into scoped clause sets:
///
///   ClauseGroup block(solver);              // "push"
///   block.addClause(solver, {...});         // clauses live in the scope
///   solver.solve({block.activation()}, -1); // solve with the scope active
///   block.retire(solver);                   // "pop": clauses go dead
///
/// retire() pins the guard false, permanently satisfying (and thereby
/// disabling) every clause of the group; commit() pins it true, promoting
/// the group to unconditional clauses. Both are one unit clause, which is
/// what keeps learnt clauses sound across the ladder: learnt clauses
/// derived while a group was active mention its guard and die with it.
/// retire() additionally runs Solver::compactDatabase(), so a retired
/// group's clauses (and the learnt clauses guarded by it) are purged
/// immediately instead of lingering until learnt-DB reduction -- the
/// clause database of a long-lived ladder solver stays proportional to
/// the active rung. Purging marks clauses dead in the solver's arena
/// clause store (docs/sat.md); once enough of the arena is dead, the
/// same call triggers the mark-and-compact GC that actually returns the
/// memory, so retiring rung after rung also keeps the arena itself from
/// growing without bound.
class ClauseGroup {
 public:
  ClauseGroup() = default;
  /// Allocates the guard variable in `solver`; the group starts active
  /// (usable via assumption) and open (not retired or committed).
  explicit ClauseGroup(Solver& solver);

  /// DIMACS literal to include in solve() assumptions to activate the
  /// group's clauses. Zero for a default-constructed (null) group.
  int activation() const { return guard_; }
  bool open() const { return guard_ != 0 && !closed_; }

  /// Adds `clause \/ !guard` -- active only under activation().
  bool addClause(Solver& solver, std::vector<int> clause);
  /// Permanently disables the group (unit !guard).
  void retire(Solver& solver);
  /// Permanently enables the group (unit guard).
  void commit(Solver& solver);

 private:
  int guard_ = 0;
  bool closed_ = false;
};

}  // namespace lclgrid::sat
