// DIMACS CNF import/export: handy for debugging synthesis instances with
// external tools and for the SAT benchmark corpus.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace lclgrid::sat {

struct Cnf {
  int numVars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0).
Cnf parseDimacs(std::istream& in);
Cnf parseDimacsString(const std::string& text);

/// Loads a CNF into a fresh set of solver variables (variable i of the CNF
/// becomes variable i of the solver, which must be empty).
void loadInto(const Cnf& cnf, Solver& solver);

std::string toDimacsString(const Cnf& cnf);

}  // namespace lclgrid::sat
