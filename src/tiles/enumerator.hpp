// The tile enumeration algorithm of Appendix A.1: generate every h x w
// anchor pattern that occurs in some maximal independent set of G^(k).
//
// Candidate patterns are grown cell by cell with incremental independence
// pruning; each complete candidate is accepted iff the *frame completion*
// check succeeds: the undominated window cells Vu must be dominated by an
// independent set In of cells outside the window that is also independent
// of the window's anchors (the hitting-set-with-independence subproblem the
// appendix solves "using a SAT solver or a tailored backtrack search" -- we
// implement the tailored backtracking).
#pragma once

#include "tiles/tile.hpp"

namespace lclgrid::tiles {

struct EnumerationStats {
  long long candidatesTried = 0;   // complete patterns reaching the frame check
  long long frameChecksFailed = 0;
  long long validTiles = 0;
};

/// Enumerates all valid tiles for anchors of G^(k) in an h x w window.
TileSet enumerateTiles(int k, int height, int width,
                       EnumerationStats* stats = nullptr);

/// Validity check for a single pattern (exposed for property tests):
/// independence inside the window plus the frame-completion check.
bool isValidTile(int k, const TileShape& shape, std::uint64_t bits);

/// Independence check only: no two anchors at L1 distance <= k.
bool isIndependentPattern(int k, const TileShape& shape, std::uint64_t bits);

}  // namespace lclgrid::tiles
