#include "tiles/tile.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid::tiles {

std::uint64_t subPattern(std::uint64_t bits, const TileShape& from, int row0,
                         int col0, const TileShape& to) {
  if (row0 < 0 || col0 < 0 || row0 + to.height > from.height ||
      col0 + to.width > from.width) {
    throw std::out_of_range("subPattern: window outside pattern");
  }
  std::uint64_t result = 0;
  for (int r = 0; r < to.height; ++r) {
    for (int c = 0; c < to.width; ++c) {
      if (hasAnchor(bits, from, row0 + r, col0 + c)) {
        result |= 1ULL << bitIndex(to, r, c);
      }
    }
  }
  return result;
}

std::string renderPattern(std::uint64_t bits, const TileShape& shape) {
  std::string out;
  for (int r = 0; r < shape.height; ++r) {
    for (int c = 0; c < shape.width; ++c) {
      out += hasAnchor(bits, shape, r, c) ? '1' : '0';
    }
    if (r + 1 < shape.height) out += '\n';
  }
  return out;
}

std::uint64_t parsePattern(const std::string& text, const TileShape& shape) {
  std::uint64_t bits = 0;
  int row = 0, col = 0;
  for (char ch : text) {
    if (ch == '\n') {
      if (col != shape.width) throw std::invalid_argument("bad row width");
      ++row;
      col = 0;
      continue;
    }
    if (ch == ' ') continue;
    if (ch != '0' && ch != '1') throw std::invalid_argument("bad character");
    if (row >= shape.height || col >= shape.width) {
      throw std::invalid_argument("pattern too large");
    }
    if (ch == '1') bits |= 1ULL << bitIndex(shape, row, col);
    ++col;
  }
  return bits;
}

TileSet::TileSet(TileShape shape, int k, std::vector<std::uint64_t> patterns)
    : shape_(shape), k_(k), patterns_(std::move(patterns)) {
  std::sort(patterns_.begin(), patterns_.end());
  patterns_.erase(std::unique(patterns_.begin(), patterns_.end()),
                  patterns_.end());
  index_.reserve(patterns_.size());
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    index_.emplace(patterns_[i], static_cast<int>(i));
  }
}

int TileSet::indexOf(std::uint64_t bits) const {
  auto it = index_.find(bits);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace lclgrid::tiles
