#include "tiles/enumerator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace lclgrid::tiles {

namespace {

struct Cell {
  int row;
  int col;
};

int l1(const Cell& a, const Cell& b) {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

std::vector<Cell> anchorsOf(std::uint64_t bits, const TileShape& shape) {
  std::vector<Cell> anchors;
  for (int r = 0; r < shape.height; ++r) {
    for (int c = 0; c < shape.width; ++c) {
      if (hasAnchor(bits, shape, r, c)) anchors.push_back({r, c});
    }
  }
  return anchors;
}

/// Backtracking solver for the frame-completion subproblem: cover all
/// `uncovered` cells using `candidates`, never choosing two candidates at
/// L1 distance <= k of each other (positions outside the window only; the
/// candidate list is already independent of the window anchors).
bool coverBacktrack(int k, std::vector<Cell>& uncovered,
                    const std::vector<Cell>& candidates,
                    std::vector<char>& available) {
  if (uncovered.empty()) return true;

  // Choose the uncovered cell with the fewest available candidates.
  int bestIndex = -1;
  int bestCount = -1;
  std::vector<int> bestCandidates;
  for (std::size_t i = 0; i < uncovered.size(); ++i) {
    std::vector<int> local;
    for (std::size_t f = 0; f < candidates.size(); ++f) {
      if (available[f] && l1(uncovered[i], candidates[f]) <= k) {
        local.push_back(static_cast<int>(f));
      }
    }
    if (bestIndex < 0 || static_cast<int>(local.size()) < bestCount) {
      bestIndex = static_cast<int>(i);
      bestCount = static_cast<int>(local.size());
      bestCandidates = std::move(local);
      if (bestCount == 0) return false;
    }
  }

  for (int f : bestCandidates) {
    // Choose candidate f: it covers everything within distance k and bans
    // all candidates within distance k (independence).
    std::vector<Cell> remaining;
    for (const Cell& u : uncovered) {
      if (l1(u, candidates[static_cast<std::size_t>(f)]) > k) {
        remaining.push_back(u);
      }
    }
    std::vector<std::size_t> banned;
    for (std::size_t g = 0; g < candidates.size(); ++g) {
      if (available[g] &&
          l1(candidates[g], candidates[static_cast<std::size_t>(f)]) <= k) {
        available[g] = 0;
        banned.push_back(g);
      }
    }
    if (coverBacktrack(k, remaining, candidates, available)) {
      for (std::size_t g : banned) available[g] = 1;
      return true;
    }
    for (std::size_t g : banned) available[g] = 1;
    // Also: candidate f itself stays banned for the rest of this branch?
    // No -- a different branching cell may still use it; correctness comes
    // from trying all candidates of the chosen cell, which every solution
    // must cover somehow.
  }
  return false;
}

}  // namespace

bool isIndependentPattern(int k, const TileShape& shape, std::uint64_t bits) {
  auto anchors = anchorsOf(bits, shape);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      if (l1(anchors[i], anchors[j]) <= k) return false;
    }
  }
  return true;
}

bool isValidTile(int k, const TileShape& shape, std::uint64_t bits) {
  if (!isIndependentPattern(k, shape, bits)) return false;
  auto anchors = anchorsOf(bits, shape);

  // Undominated window cells.
  std::vector<Cell> undominated;
  for (int r = 0; r < shape.height; ++r) {
    for (int c = 0; c < shape.width; ++c) {
      Cell cell{r, c};
      bool covered = false;
      for (const Cell& a : anchors) {
        if (l1(cell, a) <= k) {
          covered = true;
          break;
        }
      }
      if (!covered) undominated.push_back(cell);
    }
  }
  if (undominated.empty()) return true;

  // Candidate outside anchors: frame cells within distance k of some
  // undominated cell, at distance > k from every window anchor.
  std::vector<Cell> candidates;
  for (int r = -k; r < shape.height + k; ++r) {
    for (int c = -k; c < shape.width + k; ++c) {
      if (r >= 0 && r < shape.height && c >= 0 && c < shape.width) continue;
      Cell cell{r, c};
      bool useful = false;
      for (const Cell& u : undominated) {
        if (l1(cell, u) <= k) {
          useful = true;
          break;
        }
      }
      if (!useful) continue;
      bool conflicts = false;
      for (const Cell& a : anchors) {
        if (l1(cell, a) <= k) {
          conflicts = true;
          break;
        }
      }
      if (!conflicts) candidates.push_back(cell);
    }
  }

  std::vector<char> available(candidates.size(), 1);
  return coverBacktrack(k, undominated, candidates, available);
}

TileSet enumerateTiles(int k, int height, int width, EnumerationStats* stats) {
  if (height < 1 || width < 1) {
    throw std::invalid_argument("enumerateTiles: empty shape");
  }
  if (height * width > 63) {
    throw std::invalid_argument("enumerateTiles: shape exceeds 63 cells");
  }
  if (k < 1) throw std::invalid_argument("enumerateTiles: k must be >= 1");

  EnumerationStats localStats;

  // Level 1: all valid single-row tiles.
  TileShape rowShape{1, width};
  std::vector<std::uint64_t> level;
  for (std::uint64_t bits = 0; bits < (1ULL << width); ++bits) {
    ++localStats.candidatesTried;
    if (isValidTile(k, rowShape, bits)) {
      level.push_back(bits);
    } else {
      ++localStats.frameChecksFailed;
    }
  }

  // Extend row by row (the hereditary sequence 1xw -> 2xw -> ... -> hxw of
  // Appendix A.1). A candidate extension must (a) keep anchors independent
  // across the seam, (b) have its bottom (r-1)-row sub-tile in the previous
  // level (heredity), and (c) pass the full frame-completion check.
  for (int r = 2; r <= height; ++r) {
    TileShape prevShape{r - 1, width};
    TileShape currShape{r, width};
    std::unordered_set<std::uint64_t> prevSet(level.begin(), level.end());
    std::vector<std::uint64_t> next;

    for (std::uint64_t base : level) {
      for (std::uint64_t rowBits = 0; rowBits < (1ULL << width); ++rowBits) {
        // Independence of the new row against nearby rows of the base.
        bool independent = true;
        for (int c = 0; c < width && independent; ++c) {
          if (!((rowBits >> c) & 1ULL)) continue;
          // Same-row anchors.
          for (int c2 = c + 1; c2 <= std::min(width - 1, c + k); ++c2) {
            if ((rowBits >> c2) & 1ULL) {
              independent = false;
              break;
            }
          }
          // Anchors in rows above (the new row is row r-1; row r-1-j is at
          // vertical distance j).
          for (int j = 1; j <= k && independent; ++j) {
            int rowAbove = (r - 1) - j;
            if (rowAbove < 0) break;
            int span = k - j;
            for (int c2 = std::max(0, c - span);
                 c2 <= std::min(width - 1, c + span); ++c2) {
              if (hasAnchor(base, prevShape, rowAbove, c2)) {
                independent = false;
                break;
              }
            }
          }
        }
        if (!independent) continue;

        std::uint64_t candidate =
            base | (rowBits << (static_cast<std::uint64_t>(r - 1) * width));

        // Heredity: the bottom (r-1)-row window must itself be a valid tile.
        if (r >= 3) {
          std::uint64_t bottom =
              subPattern(candidate, currShape, 1, 0, prevShape);
          if (!prevSet.contains(bottom)) continue;
        }

        ++localStats.candidatesTried;
        if (isValidTile(k, currShape, candidate)) {
          next.push_back(candidate);
        } else {
          ++localStats.frameChecksFailed;
        }
      }
    }
    level = std::move(next);
  }

  localStats.validTiles = static_cast<long long>(level.size());
  if (stats) *stats = localStats;
  return TileSet({height, width}, k, std::move(level));
}

}  // namespace lclgrid::tiles
