// Anchor-pattern tiles (Section 7 / Appendix A.1). A tile records, for an
// h x w window of the grid (h rows, row 0 = northernmost, matching the
// paper's figures), which cells are anchors -- i.e. members of a maximal
// independent set of G^(k). A 0/1 pattern is a *valid* tile iff it occurs as
// a window of some MIS of G^(k) on a large torus.
//
// Patterns are stored as uint64_t bitmasks (bit r*w + c for row r, col c),
// which caps h*w at 64 -- ample for every experiment in the paper (the
// largest case, 4-colouring at k = 3, uses 9x7 super-windows = 63 cells).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lclgrid::tiles {

struct TileShape {
  int height = 0;  // rows
  int width = 0;   // columns

  int cells() const { return height * width; }
  bool operator==(const TileShape&) const = default;
};

/// Bit index of cell (row, col) in a pattern of the given shape.
inline int bitIndex(const TileShape& shape, int row, int col) {
  return row * shape.width + col;
}

inline bool hasAnchor(std::uint64_t bits, const TileShape& shape, int row,
                      int col) {
  return (bits >> bitIndex(shape, row, col)) & 1ULL;
}

/// Extracts the sub-pattern with top-left corner (row0, col0) and shape `to`
/// from a pattern of shape `from`.
std::uint64_t subPattern(std::uint64_t bits, const TileShape& from, int row0,
                         int col0, const TileShape& to);

/// Multi-line rendering ("10\n00\n01") used in logs and the tile bench.
std::string renderPattern(std::uint64_t bits, const TileShape& shape);

/// Parses the renderPattern format (rows of 0/1, separated by newlines).
std::uint64_t parsePattern(const std::string& text, const TileShape& shape);

/// An enumerated family of valid tiles of one shape, with index lookup.
class TileSet {
 public:
  TileSet(TileShape shape, int k, std::vector<std::uint64_t> patterns);

  const TileShape& shape() const { return shape_; }
  int k() const { return k_; }
  int size() const { return static_cast<int>(patterns_.size()); }
  std::uint64_t pattern(int index) const {
    return patterns_[static_cast<std::size_t>(index)];
  }
  /// Index of a pattern, or -1 when absent.
  int indexOf(std::uint64_t bits) const;

 private:
  TileShape shape_;
  int k_;
  std::vector<std::uint64_t> patterns_;  // sorted ascending
  std::unordered_map<std::uint64_t, int> index_;
};

}  // namespace lclgrid::tiles
