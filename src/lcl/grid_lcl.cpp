#include "lcl/grid_lcl.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace lclgrid {

GridLcl::GridLcl(std::string name, int sigma, std::uint8_t deps, Predicate ok)
    : name_(std::move(name)), sigma_(sigma), deps_(deps), ok_(std::move(ok)) {
  if (sigma < 1) throw std::invalid_argument("GridLcl: empty alphabet");
  if (!ok_) throw std::invalid_argument("GridLcl: missing predicate");
  if (LclTable::compilable(sigma_, deps_)) {
    table_ = std::make_shared<const LclTable>(
        LclTable::compile(sigma_, deps_, ok_));
  }
}

GridLcl::GridLcl(std::string name, LclTable table)
    : name_(std::move(name)),
      sigma_(table.sigma()),
      deps_(table.deps()),
      table_(std::make_shared<const LclTable>(std::move(table))) {
  ok_ = [t = table_](int c, int n, int e, int s, int w) {
    auto in = [&t](int label) {
      return static_cast<unsigned>(label) <
             static_cast<unsigned>(t->sigma());
    };
    if (!in(c) || !in(n) || !in(e) || !in(s) || !in(w)) return false;
    return t->allows(c, n, e, s, w);
  };
}

GridLcl::GridLcl(const GridLcl& other)
    : name_(other.name_),
      sigma_(other.sigma_),
      deps_(other.deps_),
      ok_(other.ok_),
      table_(other.table_),
      labelNames_(other.labelNames_) {
  // The acquire load synchronises with the publication in projections():
  // once the pointer is visible, other.projections_ is immutable, so the
  // plain shared_ptr copy is race-free. A null pointer (source not yet
  // computed, or mid-compute) just means this copy recomputes on demand.
  if (const Projections* computed =
          other.projectionsPtr_.load(std::memory_order_acquire)) {
    projections_ = other.projections_;
    projectionsPtr_.store(computed, std::memory_order_release);
  }
}

GridLcl& GridLcl::operator=(const GridLcl& other) {
  if (this == &other) return *this;
  GridLcl copy(other);
  name_ = std::move(copy.name_);
  sigma_ = copy.sigma_;
  deps_ = copy.deps_;
  ok_ = std::move(copy.ok_);
  table_ = std::move(copy.table_);
  labelNames_ = std::move(copy.labelNames_);
  projections_ = std::move(copy.projections_);
  projectionsPtr_.store(copy.projectionsPtr_.load(std::memory_order_relaxed),
                        std::memory_order_release);
  return *this;
}

GridLcl::GridLcl(GridLcl&& other) noexcept
    : name_(std::move(other.name_)),
      sigma_(other.sigma_),
      deps_(other.deps_),
      ok_(std::move(other.ok_)),
      table_(std::move(other.table_)),
      labelNames_(std::move(other.labelNames_)),
      projections_(std::move(other.projections_)) {
  projectionsPtr_.store(
      other.projectionsPtr_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.projectionsPtr_.store(nullptr, std::memory_order_relaxed);
}

GridLcl& GridLcl::operator=(GridLcl&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  sigma_ = other.sigma_;
  deps_ = other.deps_;
  ok_ = std::move(other.ok_);
  table_ = std::move(other.table_);
  labelNames_ = std::move(other.labelNames_);
  projections_ = std::move(other.projections_);
  projectionsPtr_.store(
      other.projectionsPtr_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.projectionsPtr_.store(nullptr, std::memory_order_relaxed);
  return *this;
}

const LclTable& GridLcl::table() const {
  if (!table_) {
    throw std::logic_error("GridLcl: '" + name_ +
                           "' has no compiled table (alphabet too large)");
  }
  return *table_;
}

void GridLcl::setLabelNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != sigma_) {
    throw std::invalid_argument("GridLcl: label name count mismatch");
  }
  labelNames_ = std::move(names);
}

std::string GridLcl::labelName(int label) const {
  if (label < 0 || label >= sigma_) return "?";
  if (labelNames_.empty()) return std::to_string(label);
  return labelNames_[static_cast<std::size_t>(label)];
}

bool GridLcl::hasTrivialSolution() const { return trivialLabel() >= 0; }

int GridLcl::trivialLabel() const {
  if (table_) return table_->trivialLabel();
  for (int label = 0; label < sigma_; ++label) {
    if (allows(label, label, label, label, label)) return label;
  }
  return -1;
}

const GridLcl::Projections& GridLcl::projections() const {
  // Fast path: one lock-free acquire load, as cheap as the plain flag it
  // replaced -- the synthesizer calls the pair projections sigma^2 times
  // per CNF build. The mutex only serialises the one-time compute (it is
  // global because GridLcl must stay copyable and fallback-path computes
  // are rare). The projections are only ever set once, so the returned
  // reference stays valid for the problem's lifetime.
  if (const Projections* computed =
          projectionsPtr_.load(std::memory_order_acquire)) {
    return *computed;
  }
  static std::mutex computeMutex;
  std::lock_guard<std::mutex> lock(computeMutex);
  if (const Projections* computed =
          projectionsPtr_.load(std::memory_order_acquire)) {
    return *computed;
  }

  auto fresh = std::make_shared<Projections>();
  const int s = sigma_;
  fresh->hPairs.assign(static_cast<std::size_t>(s) * s, 0);
  fresh->vPairs.assign(static_cast<std::size_t>(s) * s, 0);

  // Maximal candidate projections: a pair participates if it occurs in some
  // allowed cross, viewed from either of the two nodes it touches. If a
  // decomposition exists at all, it is witnessed by these relations (see the
  // unit tests for the equivalence argument exercised on all problems).
  for (int c = 0; c < s; ++c) {
    for (int n = 0; n < s; ++n) {
      for (int e = 0; e < s; ++e) {
        for (int so = 0; so < s; ++so) {
          for (int w = 0; w < s; ++w) {
            if (!allows(c, n, e, so, w)) continue;
            fresh->hPairs[static_cast<std::size_t>(w) * s + c] = 1;
            fresh->hPairs[static_cast<std::size_t>(c) * s + e] = 1;
            fresh->vPairs[static_cast<std::size_t>(so) * s + c] = 1;
            fresh->vPairs[static_cast<std::size_t>(c) * s + n] = 1;
          }
        }
      }
    }
  }

  bool decomposable = true;
  for (int c = 0; c < s && decomposable; ++c) {
    for (int n = 0; n < s && decomposable; ++n) {
      for (int e = 0; e < s && decomposable; ++e) {
        for (int so = 0; so < s && decomposable; ++so) {
          for (int w = 0; w < s; ++w) {
            bool byPairs =
                fresh->hPairs[static_cast<std::size_t>(w) * s + c] &&
                fresh->hPairs[static_cast<std::size_t>(c) * s + e] &&
                fresh->vPairs[static_cast<std::size_t>(so) * s + c] &&
                fresh->vPairs[static_cast<std::size_t>(c) * s + n];
            if (byPairs != allows(c, n, e, so, w)) {
              decomposable = false;
              break;
            }
          }
        }
      }
    }
  }
  fresh->edgeDecomposable = decomposable;

  // Ownership lands in projections_ under the mutex; the release store of
  // the raw pointer is the publication readers synchronise with.
  projections_ = std::move(fresh);
  projectionsPtr_.store(projections_.get(), std::memory_order_release);
  return *projections_;
}

bool GridLcl::isEdgeDecomposable() const {
  if (table_) return table_->edgeDecomposable();
  return projections().edgeDecomposable;
}

bool GridLcl::horizontalOk(int west, int east) const {
  if (table_) return table_->horizontalOk(west, east);
  return projections()
             .hPairs[static_cast<std::size_t>(west) * sigma_ + east] != 0;
}

bool GridLcl::verticalOk(int south, int north) const {
  if (table_) return table_->verticalOk(south, north);
  return projections()
             .vPairs[static_cast<std::size_t>(south) * sigma_ + north] != 0;
}

}  // namespace lclgrid
