#include "lcl/grid_lcl.hpp"

#include <stdexcept>
#include <utility>

namespace lclgrid {

GridLcl::GridLcl(std::string name, int sigma, std::uint8_t deps, Predicate ok)
    : name_(std::move(name)), sigma_(sigma), deps_(deps), ok_(std::move(ok)) {
  if (sigma < 1) throw std::invalid_argument("GridLcl: empty alphabet");
  if (!ok_) throw std::invalid_argument("GridLcl: missing predicate");
  if (LclTable::compilable(sigma_, deps_)) {
    table_ = std::make_shared<const LclTable>(
        LclTable::compile(sigma_, deps_, ok_));
  }
}

GridLcl::GridLcl(std::string name, LclTable table)
    : name_(std::move(name)),
      sigma_(table.sigma()),
      deps_(table.deps()),
      table_(std::make_shared<const LclTable>(std::move(table))) {
  ok_ = [t = table_](int c, int n, int e, int s, int w) {
    auto in = [&t](int label) {
      return static_cast<unsigned>(label) <
             static_cast<unsigned>(t->sigma());
    };
    if (!in(c) || !in(n) || !in(e) || !in(s) || !in(w)) return false;
    return t->allows(c, n, e, s, w);
  };
}

const LclTable& GridLcl::table() const {
  if (!table_) {
    throw std::logic_error("GridLcl: '" + name_ +
                           "' has no compiled table (alphabet too large)");
  }
  return *table_;
}

void GridLcl::setLabelNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != sigma_) {
    throw std::invalid_argument("GridLcl: label name count mismatch");
  }
  labelNames_ = std::move(names);
}

std::string GridLcl::labelName(int label) const {
  if (label < 0 || label >= sigma_) return "?";
  if (labelNames_.empty()) return std::to_string(label);
  return labelNames_[static_cast<std::size_t>(label)];
}

bool GridLcl::hasTrivialSolution() const { return trivialLabel() >= 0; }

int GridLcl::trivialLabel() const {
  if (table_) return table_->trivialLabel();
  for (int label = 0; label < sigma_; ++label) {
    if (allows(label, label, label, label, label)) return label;
  }
  return -1;
}

void GridLcl::computeProjections() const {
  if (projectionsComputed_) return;
  projectionsComputed_ = true;
  const int s = sigma_;
  hPairs_.assign(static_cast<std::size_t>(s) * s, 0);
  vPairs_.assign(static_cast<std::size_t>(s) * s, 0);

  // Maximal candidate projections: a pair participates if it occurs in some
  // allowed cross, viewed from either of the two nodes it touches. If a
  // decomposition exists at all, it is witnessed by these relations (see the
  // unit tests for the equivalence argument exercised on all problems).
  for (int c = 0; c < s; ++c) {
    for (int n = 0; n < s; ++n) {
      for (int e = 0; e < s; ++e) {
        for (int so = 0; so < s; ++so) {
          for (int w = 0; w < s; ++w) {
            if (!allows(c, n, e, so, w)) continue;
            hPairs_[static_cast<std::size_t>(w) * s + c] = 1;
            hPairs_[static_cast<std::size_t>(c) * s + e] = 1;
            vPairs_[static_cast<std::size_t>(so) * s + c] = 1;
            vPairs_[static_cast<std::size_t>(c) * s + n] = 1;
          }
        }
      }
    }
  }

  edgeDecomposable_ = true;
  for (int c = 0; c < s && edgeDecomposable_; ++c) {
    for (int n = 0; n < s && edgeDecomposable_; ++n) {
      for (int e = 0; e < s && edgeDecomposable_; ++e) {
        for (int so = 0; so < s && edgeDecomposable_; ++so) {
          for (int w = 0; w < s; ++w) {
            bool byPairs = hPairs_[static_cast<std::size_t>(w) * s + c] &&
                           hPairs_[static_cast<std::size_t>(c) * s + e] &&
                           vPairs_[static_cast<std::size_t>(so) * s + c] &&
                           vPairs_[static_cast<std::size_t>(c) * s + n];
            if (byPairs != allows(c, n, e, so, w)) {
              edgeDecomposable_ = false;
              break;
            }
          }
        }
      }
    }
  }
}

bool GridLcl::isEdgeDecomposable() const {
  if (table_) return table_->edgeDecomposable();
  computeProjections();
  return edgeDecomposable_;
}

bool GridLcl::horizontalOk(int west, int east) const {
  if (table_) return table_->horizontalOk(west, east);
  computeProjections();
  return hPairs_[static_cast<std::size_t>(west) * sigma_ + east] != 0;
}

bool GridLcl::verticalOk(int south, int north) const {
  if (table_) return table_->verticalOk(south, north);
  computeProjections();
  return vPairs_[static_cast<std::size_t>(south) * sigma_ + north] != 0;
}

}  // namespace lclgrid
