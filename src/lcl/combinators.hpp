// Problem combinators: structured ways to build new LCLs from old ones.
//
//  * disjointUnion -- "solve either P or Q" with family consistency between
//    neighbours; exactly the construction L_M = P1 u P2 of Section 6.
//  * relabel -- push the alphabet through a bijection (complexity-
//    preserving; used e.g. to normalise colour names).
//  * flipOrientation -- reverse every edge of an orientation problem; maps
//    X-orientations to (4-X)-orientations, the paper's argument that
//    {0,1,3} and {1,3,4} have the same complexity (Section 11).
//  * restrictLabels -- forbid a subset of labels (monotone: can only make
//    problems harder).
#pragma once

#include <vector>

#include "lcl/grid_lcl.hpp"

namespace lclgrid::problems {

/// Labels [0, p.sigma()) solve P; labels [p.sigma(), p.sigma()+q.sigma())
/// solve Q; adjacent nodes must use the same family.
GridLcl disjointUnion(const GridLcl& p, const GridLcl& q);

/// Applies a label bijection: newLabel = permutation[oldLabel].
GridLcl relabel(const GridLcl& p, const std::vector<int>& permutation);

/// Reverses all edge directions of an orientation problem (sigma must be 4,
/// the problems::orientation encoding).
GridLcl flipOrientation(const GridLcl& orientationProblem);

/// Keeps only the labels with keep[label] == true (alphabet is re-indexed).
GridLcl restrictLabels(const GridLcl& p, const std::vector<bool>& keep);

}  // namespace lclgrid::problems
