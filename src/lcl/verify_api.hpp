// The unified verification front door. The engine grew four kernel tiers
// and three execution regimes (serial / pool-sharded / out-of-core
// streaming), each with its own overload family across verifier.hpp and
// stream_verify.hpp -- 20+ entry points for what is semantically one
// question ("is this labelling feasible, and how many nodes violate?").
// This header collapses them behind one request/options/result triple:
//
//   VerifyRequest request;
//   request.problem = &lcl;            // or problemD, or a fingerprint +
//   request.torus = &torus;            //   resolver (the service's idiom)
//   request.labels = labels;           // one labelling, or a back-to-back
//   request.options.countViolations = true;       //   batch, or a file
//   VerifyResult result = verify(request);
//   // result.feasible, result.violations, result.tier, result.nanos
//
// Semantics are exactly the documented overload semantics (verifier.hpp):
// verify-mode early-exits at the first violation, count-mode reports the
// exact total, and counts are bit-identical on every kernel tier and thread
// count. The old overloads remain as a thin compatibility surface -- the
// threaded ones (engine/parallel_verifier.cpp) now *forward* through this
// API -- and the verification service daemon (src/service) dispatches
// exclusively through it.
//
// Tier selection and pinning: by default (TierPin::kAuto) the request runs
// the tier the engine selects per docs/perf.md -- the same rules as every
// overload. A pinned tier runs exactly that kernel, bypassing the
// bit-slice node floor and the LCLGRID_BITSLICE gate, and throws
// std::invalid_argument when the problem/instance cannot run it (no
// compiled table, no bit-slice plan, out-of-range labels). Streaming
// requests (a file or labellingPath) always report VerifyTier::kStream and
// accept only kAuto.
//
// Implemented in src/engine/verify_api.cpp -- link lclgrid_engine (or the
// umbrella `lclgrid` target).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine_options.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/stream_verify.hpp"

namespace lclgrid {

class Torus2D;
class TorusD;

/// The kernel tier a request ran on (docs/perf.md).
enum class VerifyTier { kFunctional, kTable, kBitsliced, kStream };

const char* verifyTierName(VerifyTier tier);

/// Tier pin for VerifyOptions: kAuto selects per the engine's rules; a
/// pinned tier runs exactly that kernel or throws std::invalid_argument.
enum class TierPin { kAuto, kFunctional, kTable, kBitsliced };

struct VerifyOptions {
  /// false: decide feasibility, early-exit at the first violation (the
  /// `violations` field is then 0 or 1, a lower bound). true: scan
  /// everything, report the exact violation total.
  bool countViolations = false;
  /// Threads / grain / pool for the execution; threads == 1 runs serially
  /// on the caller (the exact serial kernel slices).
  engine::EngineOptions engine{.threads = 1};
  TierPin tier = TierPin::kAuto;
  /// Slab geometry for streaming (file / labellingPath) requests.
  StreamWindow window;
};

struct VerifyRequest {
  // --- problem reference: exactly one of problem / problemD, or a
  // fingerprint plus resolver ------------------------------------------------
  const GridLcl* problem = nullptr;
  const GridLclD* problemD = nullptr;
  /// Table fingerprint of a previously seen problem; consulted only when
  /// both problem pointers are null. `resolveFingerprint` maps it to a
  /// live problem (the service's table cache is the canonical resolver);
  /// an unresolvable fingerprint throws std::invalid_argument.
  std::uint64_t fingerprint = 0;
  std::function<const GridLcl*(std::uint64_t)> resolveFingerprint;

  // --- instance: inline labels over a torus, or an LCLLABv1 file ------------
  /// Geometry for inline labels (torus for GridLcl, torusD for GridLclD).
  const Torus2D* torus = nullptr;
  const TorusD* torusD = nullptr;
  /// One labelling (labels.size() == torus size) or a back-to-back batch
  /// (a whole multiple); the batch runs one labelling per work item, like
  /// verifyBatch / countViolationsBatch.
  std::span<const int> labels;
  /// An already-open LCLLABv1 labelling (streamed zero-copy), or ...
  const StreamLabelling* file = nullptr;
  /// ... a path to open one for the duration of the call.
  std::string labellingPath;

  VerifyOptions options;
};

struct VerifyResult {
  /// True iff every labelling of the request is feasible.
  bool feasible = false;
  /// Total violations across the request: exact when
  /// options.countViolations, otherwise 0 (feasible) or >= 1 (early exit).
  std::int64_t violations = 0;
  /// Labellings covered (1 for single / file requests).
  std::int64_t labellings = 1;
  /// Per-labelling verdicts / counts, filled only for batches
  /// (labellings > 1); single-labelling requests report through the
  /// aggregate fields alone, keeping the hot path allocation-free.
  std::vector<std::uint8_t> feasiblePerLabelling;
  std::vector<std::int64_t> violationsPerLabelling;  // count mode only
  /// The tier the request dispatched to. Batches select per labelling --
  /// exactly like the batch overloads -- and report the first labelling's
  /// selection (an out-of-range labelling later in the batch still falls
  /// back functionally on its own).
  VerifyTier tier = VerifyTier::kFunctional;
  /// Fingerprint of the problem's compiled table (0 when uncompiled).
  std::uint64_t fingerprint = 0;
  /// Wall time of the dispatch (excluding request validation), for the
  /// service's latency accounting.
  std::int64_t nanos = 0;
};

/// The one verification entry point: validates the request, resolves the
/// problem and instance, selects (or honours the pinned) kernel tier and
/// dispatches. Throws std::invalid_argument on malformed requests (no/
/// ambiguous problem, missing instance, size or dimension mismatches,
/// unsatisfiable tier pin) and std::runtime_error for unreadable labelling
/// files. Counts are bit-identical to the per-tier overloads at every
/// thread count.
VerifyResult verify(const VerifyRequest& request);

}  // namespace lclgrid
