// Shared kernel-tier attribution probes for the verification engine
// (support/telemetry.hpp): verifier.cpp, verifier_d.cpp, stream_verify.cpp
// and engine/parallel_verifier.cpp all funnel their tier dispatch through
// recordCall() so the four tiers share one set of counter names whatever
// the entry point. All of this compiles to nothing with
// -DLCLGRID_TELEMETRY=OFF.
#pragma once

#include <cstddef>
#include <cstdint>

#include "lcl/label_planes.hpp"
#include "support/telemetry.hpp"

namespace lclgrid::verify_probes {

enum class Tier { kFunctional = 0, kTable = 1, kBitsliced = 2, kStream = 3 };

/// Span name for a tier's kernel pass ('/'-separated span naming scheme,
/// docs/observability.md). String literals: safe to hand to ScopedSpan.
inline const char* spanName(Tier tier) {
  switch (tier) {
    case Tier::kFunctional:
      return "verify/functional";
    case Tier::kTable:
      return "verify/table";
    case Tier::kBitsliced:
      return "verify/bitsliced";
    case Tier::kStream:
      return "verify/stream";
  }
  return "verify/unknown";
}

/// Attributes one verify/count call to the kernel tier it dispatched to:
/// bumps verify.calls.<tier> and verify.nodes.<tier>, and on the bit-sliced
/// tier also verify.simd.<rung> for the SimdTier ladder rung in effect
/// (individual rows below the width floors still run scalar -- the counter
/// records the dispatched rung, see docs/perf.md).
inline void recordCall(Tier tier, std::int64_t nodes) {
  namespace tm = telemetry;
  static const tm::Counter calls[4] = {
      tm::counter("verify.calls.functional"),
      tm::counter("verify.calls.table"),
      tm::counter("verify.calls.bitsliced"),
      tm::counter("verify.calls.stream")};
  static const tm::Counter nodeCounts[4] = {
      tm::counter("verify.nodes.functional"),
      tm::counter("verify.nodes.table"),
      tm::counter("verify.nodes.bitsliced"),
      tm::counter("verify.nodes.stream")};
  const auto index = static_cast<std::size_t>(tier);
  calls[index].increment();
  nodeCounts[index].add(nodes);
  if (tier == Tier::kBitsliced) {
    static const tm::Counter simd[3] = {tm::counter("verify.simd.scalar"),
                                        tm::counter("verify.simd.avx2"),
                                        tm::counter("verify.simd.avx512")};
    simd[static_cast<std::size_t>(bitslice::simdTier())].increment();
  }
}

}  // namespace lclgrid::verify_probes
