// LCL problems on the oriented 2-dimensional torus, in radius-1 *cross* form
// (Section 3, "Radius-1 LCL problems"): the output alphabet is a finite set
// [sigma], and feasibility of a labelling is the conjunction, over all nodes,
// of a predicate over the node's own label and the labels of its four
// neighbours (north, east, south, west -- the orientation is part of the
// model, so the predicate may distinguish directions).
//
// Problems whose natural radius is larger (e.g. the Turing-machine problem
// L_M of Section 6) get bespoke verifiers; per the paper this only shifts
// running times by additive constants.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lclgrid {

/// Bitmask flags naming which neighbour labels a predicate actually reads.
/// Constraint generators use this to avoid quantifying over irrelevant
/// positions (e.g. edge colouring only reads C, S and W).
enum DepBit : std::uint8_t {
  kDepN = 1 << 0,
  kDepE = 1 << 1,
  kDepS = 1 << 2,
  kDepW = 1 << 3,
  kDepAll = kDepN | kDepE | kDepS | kDepW,
};

class GridLcl {
 public:
  using Predicate = std::function<bool(int c, int n, int e, int s, int w)>;

  GridLcl(std::string name, int sigma, std::uint8_t deps, Predicate ok);

  const std::string& name() const { return name_; }
  int sigma() const { return sigma_; }
  std::uint8_t deps() const { return deps_; }

  bool allows(int c, int n, int e, int s, int w) const {
    return ok_(c, n, e, s, w);
  }

  /// Optional human-readable label names (size sigma if set).
  void setLabelNames(std::vector<std::string> names);
  std::string labelName(int label) const;

  /// True iff the constant labelling with some single label is feasible;
  /// on toroidal grids this is exactly the O(1)-solvable case (Section 7).
  bool hasTrivialSolution() const;
  /// The trivial label if one exists, otherwise -1.
  int trivialLabel() const;

  /// True iff the predicate factorises into horizontal and vertical pair
  /// constraints: ok(c,n,e,s,w) == H(w,c) && H(c,e) && V(s,c) && V(c,n).
  /// Checked by exhaustive enumeration (alphabets are small).
  bool isEdgeDecomposable() const;

  /// Pair projections used when isEdgeDecomposable() holds:
  /// horizontalOk(a, b): a immediately west of b may carry (a, b).
  bool horizontalOk(int west, int east) const;
  /// verticalOk(a, b): a immediately south of b may carry (a, b).
  bool verticalOk(int south, int north) const;

 private:
  void computeProjections() const;

  std::string name_;
  int sigma_;
  std::uint8_t deps_;
  Predicate ok_;
  std::vector<std::string> labelNames_;

  // Lazily computed decomposability data.
  mutable bool projectionsComputed_ = false;
  mutable bool edgeDecomposable_ = false;
  mutable std::vector<std::uint8_t> hPairs_;  // sigma x sigma
  mutable std::vector<std::uint8_t> vPairs_;
};

}  // namespace lclgrid
