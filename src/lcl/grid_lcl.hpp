// LCL problems on the oriented 2-dimensional torus, in radius-1 *cross* form
// (Section 3, "Radius-1 LCL problems"): the output alphabet is a finite set
// [sigma], and feasibility of a labelling is the conjunction, over all nodes,
// of a predicate over the node's own label and the labels of its four
// neighbours (north, east, south, west -- the orientation is part of the
// model, so the predicate may distinguish directions).
//
// The constructor predicate is an ergonomic front end only: on construction
// it is compiled once into an LclTable (a dense bit-packed truth table, see
// lcl/lcl_table.hpp), and every query -- allows(), the projections, the
// triviality probe -- is a table lookup from then on. Alphabets too large
// for a table (sigma > 64 or an oversized dependent row space) keep the
// predicate path and the seed's lazy projection computation.
//
// Problems whose natural radius is larger (e.g. the Turing-machine problem
// L_M of Section 6) get bespoke verifiers; per the paper this only shifts
// running times by additive constants.
//
// Thread-safety contract: a constructed GridLcl is immutable apart from
// setLabelNames, so const queries (allows, table, trivialLabel, the
// projections) may run concurrently from engine pool threads -- the lazy
// fallback projections are published atomically. The one obligation on
// callers is that constructor predicates must be re-entrant (pure functions
// of their five arguments); every problem in problems.hpp is. setLabelNames
// must happen-before sharing the object across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lcl/lcl_table.hpp"

namespace lclgrid {

/// Bitmask flags naming which neighbour labels a predicate actually reads.
/// Constraint generators use this to avoid quantifying over irrelevant
/// positions (e.g. edge colouring only reads C, S and W).
enum DepBit : std::uint8_t {
  kDepN = 1 << 0,
  kDepE = 1 << 1,
  kDepS = 1 << 2,
  kDepW = 1 << 3,
  kDepAll = kDepN | kDepE | kDepS | kDepW,
};

// GridLcl hands its deps mask straight to LclTable, which reads it through
// the free-standing kTableDep* constants; the two definitions must agree.
static_assert(kDepN == kTableDepN && kDepE == kTableDepE &&
              kDepS == kTableDepS && kDepW == kTableDepW);

class GridLcl {
 public:
  using Predicate = std::function<bool(int c, int n, int e, int s, int w)>;

  GridLcl(std::string name, int sigma, std::uint8_t deps, Predicate ok);
  /// Table-first construction (combinators compose tables directly); the
  /// predicate() accessor is backed by table lookups.
  GridLcl(std::string name, LclTable table);

  /// Copying is safe concurrently with const queries on the source: the
  /// lazily published projections are read through their atomic pointer (a
  /// defaulted copy would race with projections()'s publication). Moving
  /// requires exclusive ownership of the source, like any mutation.
  GridLcl(const GridLcl& other);
  GridLcl& operator=(const GridLcl& other);
  GridLcl(GridLcl&& other) noexcept;
  GridLcl& operator=(GridLcl&& other) noexcept;

  const std::string& name() const { return name_; }
  int sigma() const { return sigma_; }
  std::uint8_t deps() const { return deps_; }

  /// Single constraint query. In-range arguments on a compiled problem are
  /// one indexed load and a bit test; out-of-range arguments (or an
  /// uncompiled problem) fall back to the raw predicate, preserving the
  /// predicate's own semantics for garbage labels.
  bool allows(int c, int n, int e, int s, int w) const {
    if (table_ && inRange(c) && inRange(n) && inRange(e) && inRange(s) &&
        inRange(w)) {
      return table_->allows(c, n, e, s, w);
    }
    return ok_(c, n, e, s, w);
  }

  /// True iff the problem compiled to a table (always, for every problem in
  /// the library; only exotic alphabets beyond 64 labels stay functional).
  bool hasTable() const { return table_ != nullptr; }
  /// The compiled table; throws std::logic_error when hasTable() is false.
  const LclTable& table() const;
  /// The original constructor predicate (used by property tests and as the
  /// reference implementation for uncompiled problems).
  const Predicate& predicate() const { return ok_; }

  /// Optional human-readable label names (size sigma if set).
  void setLabelNames(std::vector<std::string> names);
  std::string labelName(int label) const;

  /// True iff the constant labelling with some single label is feasible;
  /// on toroidal grids this is exactly the O(1)-solvable case (Section 7).
  bool hasTrivialSolution() const;
  /// The trivial label if one exists, otherwise -1.
  int trivialLabel() const;

  /// True iff the predicate factorises into horizontal and vertical pair
  /// constraints: ok(c,n,e,s,w) == H(w,c) && H(c,e) && V(s,c) && V(c,n).
  bool isEdgeDecomposable() const;

  /// Pair projections used when isEdgeDecomposable() holds:
  /// horizontalOk(a, b): a immediately west of b may carry (a, b).
  bool horizontalOk(int west, int east) const;
  /// verticalOk(a, b): a immediately south of b may carry (a, b).
  bool verticalOk(int south, int north) const;

 private:
  bool inRange(int label) const {
    return static_cast<unsigned>(label) < static_cast<unsigned>(sigma_);
  }

  /// Decomposability data for the fallback path (alphabets beyond the table
  /// limits), computed on first use and published once.
  struct Projections {
    bool edgeDecomposable = false;
    std::vector<std::uint8_t> hPairs;  // sigma x sigma
    std::vector<std::uint8_t> vPairs;
  };
  const Projections& projections() const;

  std::string name_;
  int sigma_;
  std::uint8_t deps_;
  Predicate ok_;
  std::shared_ptr<const LclTable> table_;  // shared: copies stay cheap
  std::vector<std::string> labelNames_;

  // Lazily computed, set at most once. The lock-free fast path is the raw
  // atomic pointer (one acquire load per query -- as cheap as the plain
  // flag it replaced); the shared_ptr carries ownership and is only
  // touched under the compute mutex / after an acquire of the pointer, so
  // concurrent queries and copies from engine pool threads are race-free.
  // Copies taken before the computation each recompute at most once.
  mutable std::shared_ptr<const Projections> projections_;
  mutable std::atomic<const Projections*> projectionsPtr_{nullptr};
};

}  // namespace lclgrid
