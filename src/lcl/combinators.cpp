#include "lcl/combinators.hpp"

#include <stdexcept>

#include "lcl/problems.hpp"

namespace lclgrid::problems {

// Every combinator has two construction paths: when the operands carry
// compiled tables (the norm), the result's table is composed directly --
// block-diagonal union, row gathers and bit permutations -- with no
// predicate in the loop. Problems beyond the table limits keep the seed's
// closure-capture construction.

GridLcl disjointUnion(const GridLcl& p, const GridLcl& q) {
  const int sigmaP = p.sigma();
  const int sigmaQ = q.sigma();
  const std::string name = p.name() + " u " + q.name();

  if (p.hasTable() && q.hasTable() &&
      LclTable::compilable(sigmaP + sigmaQ, kDepAll)) {
    return GridLcl(name, LclTable::disjointUnion(p.table(), q.table()));
  }

  // Capture predicate copies by value: the combinator must not dangle.
  GridLcl pCopy = p;
  GridLcl qCopy = q;
  return GridLcl(
      name, sigmaP + sigmaQ, kDepAll,
      [pCopy, qCopy, sigmaP](int c, int n, int e, int s, int w) {
        bool cIsP = c < sigmaP;
        // Family consistency: all five labels on the same side.
        for (int other : {n, e, s, w}) {
          if ((other < sigmaP) != cIsP) return false;
        }
        if (cIsP) return pCopy.allows(c, n, e, s, w);
        return qCopy.allows(c - sigmaP, n - sigmaP, e - sigmaP, s - sigmaP,
                            w - sigmaP);
      });
}

GridLcl relabel(const GridLcl& p, const std::vector<int>& permutation) {
  if (static_cast<int>(permutation.size()) != p.sigma()) {
    throw std::invalid_argument("relabel: permutation arity mismatch");
  }
  // Invert the permutation: the new problem sees new labels and must map
  // them back before consulting the original.
  std::vector<int> inverse(permutation.size(), -1);
  for (std::size_t old = 0; old < permutation.size(); ++old) {
    int fresh = permutation[old];
    if (fresh < 0 || fresh >= p.sigma() ||
        inverse[static_cast<std::size_t>(fresh)] != -1) {
      throw std::invalid_argument("relabel: not a bijection");
    }
    inverse[static_cast<std::size_t>(fresh)] = static_cast<int>(old);
  }
  const std::string name = p.name() + "[relabelled]";

  if (p.hasTable()) {
    return GridLcl(name, LclTable::remap(p.table(), inverse));
  }

  GridLcl pCopy = p;
  return GridLcl(name, p.sigma(), p.deps(),
                 [pCopy, inverse](int c, int n, int e, int s, int w) {
                   auto back = [&inverse](int label) {
                     return inverse[static_cast<std::size_t>(label)];
                   };
                   return pCopy.allows(back(c), back(n), back(e), back(s),
                                       back(w));
                 });
}

GridLcl flipOrientation(const GridLcl& orientationProblem) {
  if (orientationProblem.sigma() != 4) {
    throw std::invalid_argument(
        "flipOrientation: expects the 4-label orientation encoding");
  }
  const std::string name = orientationProblem.name() + "[flipped]";
  // Flipping every edge complements both direction bits of every label.
  auto flip = [](int label) { return label ^ 3; };

  if (orientationProblem.hasTable()) {
    std::vector<int> toOld = {flip(0), flip(1), flip(2), flip(3)};
    return GridLcl(name, LclTable::remap(orientationProblem.table(), toOld));
  }

  GridLcl pCopy = orientationProblem;
  return GridLcl(name, 4, orientationProblem.deps(),
                 [pCopy, flip](int c, int n, int e, int s, int w) {
                   return pCopy.allows(flip(c), flip(n), flip(e), flip(s),
                                       flip(w));
                 });
}

GridLcl restrictLabels(const GridLcl& p, const std::vector<bool>& keep) {
  if (static_cast<int>(keep.size()) != p.sigma()) {
    throw std::invalid_argument("restrictLabels: mask arity mismatch");
  }
  std::vector<int> toOld;
  for (int label = 0; label < p.sigma(); ++label) {
    if (keep[static_cast<std::size_t>(label)]) toOld.push_back(label);
  }
  if (toOld.empty()) {
    throw std::invalid_argument("restrictLabels: empty alphabet");
  }
  const std::string name = p.name() + "[restricted]";

  if (p.hasTable()) {
    return GridLcl(name, LclTable::remap(p.table(), toOld));
  }

  GridLcl pCopy = p;
  return GridLcl(name, static_cast<int>(toOld.size()), p.deps(),
                 [pCopy, toOld](int c, int n, int e, int s, int w) {
                   auto old = [&toOld](int label) {
                     return toOld[static_cast<std::size_t>(label)];
                   };
                   return pCopy.allows(old(c), old(n), old(e), old(s), old(w));
                 });
}

}  // namespace lclgrid::problems
