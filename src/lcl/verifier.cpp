#include "lcl/verifier.hpp"

#include <sstream>
#include <stdexcept>

namespace lclgrid {

std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("listViolations: labelling size mismatch");
  }
  std::vector<Violation> violations;
  for (int v = 0; v < torus.size() &&
                  static_cast<int>(violations.size()) < maxReported;
       ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= lcl.sigma()) {
      violations.push_back({v, "label out of alphabet"});
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!lcl.allows(c, n, e, s, w)) {
      std::ostringstream os;
      auto [x, y] = torus.xy(v);
      os << "constraint violated at (" << x << "," << y << "): c="
         << lcl.labelName(c) << " n=" << lcl.labelName(n) << " e="
         << lcl.labelName(e) << " s=" << lcl.labelName(s) << " w="
         << lcl.labelName(w);
      violations.push_back({v, os.str()});
    }
  }
  return violations;
}

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels) {
  return listViolations(torus, lcl, labels, 1).empty();
}

std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels) {
  std::ostringstream os;
  for (int y = torus.n() - 1; y >= 0; --y) {
    for (int x = 0; x < torus.n(); ++x) {
      if (x > 0) os << " ";
      os << lcl.labelName(labels[static_cast<std::size_t>(torus.id(x, y))]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lclgrid
