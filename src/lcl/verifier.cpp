#include "lcl/verifier.hpp"

#include <sstream>
#include <stdexcept>

namespace lclgrid {

namespace {

/// Table-driven kernel over grid rows [yBegin, yEnd) of one labelling, laid
/// out row-major (node y*n+x). Requires every label in [0, sigma).
/// Neighbour lookups use row pointers instead of Torus2D::step, so the
/// inner loop is a handful of loads, one table row fetch and a bit test per
/// node. The row-range form is what the engine's sharded verifier
/// distributes across threads (per-shard accumulators, combined in shard
/// order, hence bit-identical to one serial sweep).
template <bool StopAtFirst>
std::int64_t tableViolations(const LclTable& table, int n, const int* labels,
                             int yBegin, int yEnd) {
  std::int64_t bad = 0;
  for (int y = yBegin; y < yEnd; ++y) {
    const int* row = labels + static_cast<std::size_t>(y) * n;
    const int* rowNorth =
        labels + static_cast<std::size_t>(y + 1 == n ? 0 : y + 1) * n;
    const int* rowSouth =
        labels + static_cast<std::size_t>(y == 0 ? n - 1 : y - 1) * n;
    for (int x = 0; x < n; ++x) {
      const int east = row[x + 1 == n ? 0 : x + 1];
      const int west = row[x == 0 ? n - 1 : x - 1];
      const std::uint64_t mask =
          table.centreMask(rowNorth[x], east, rowSouth[x], west);
      if (!((mask >> row[x]) & 1u)) {
        if constexpr (StopAtFirst) return 1;
        ++bad;
      }
    }
  }
  return bad;
}

/// Fallback for uncompiled problems or out-of-alphabet labels, over nodes
/// [vBegin, vEnd): mirrors the seed's per-node loop. An out-of-alphabet
/// centre label is a violation; neighbourhoods are otherwise judged by
/// GridLcl::allows (which routes garbage neighbour labels to the raw
/// predicate, as the seed did).
template <bool StopAtFirst>
std::int64_t functionalViolations(const Torus2D& torus, const GridLcl& lcl,
                                  std::span<const int> labels, int vBegin,
                                  int vEnd) {
  std::int64_t bad = 0;
  for (int v = vBegin; v < vEnd; ++v) {
    const int c = labels[static_cast<std::size_t>(v)];
    bool violated;
    if (c < 0 || c >= lcl.sigma()) {
      violated = true;
    } else {
      const int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
      const int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
      const int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
      const int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
      violated = !lcl.allows(c, n, e, s, w);
    }
    if (violated) {
      if constexpr (StopAtFirst) return 1;
      ++bad;
    }
  }
  return bad;
}

template <bool StopAtFirst>
std::int64_t violationsKernel(const Torus2D& torus, const GridLcl& lcl,
                              std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
  if (lcl.hasTable() &&
      verifier_detail::allLabelsInRange(lcl.sigma(), labels)) {
    return tableViolations<StopAtFirst>(lcl.table(), torus.n(), labels.data(),
                                        0, torus.n());
  }
  return functionalViolations<StopAtFirst>(torus, lcl, labels, 0,
                                           torus.size());
}

}  // namespace

using verifier_detail::batchCount;

std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("listViolations: labelling size mismatch");
  }
  std::vector<Violation> violations;
  for (int v = 0; v < torus.size() &&
                  static_cast<int>(violations.size()) < maxReported;
       ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= lcl.sigma()) {
      violations.push_back({v, "label out of alphabet"});
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!lcl.allows(c, n, e, s, w)) {
      std::ostringstream os;
      auto [x, y] = torus.xy(v);
      os << "constraint violated at (" << x << "," << y << "): c="
         << lcl.labelName(c) << " n=" << lcl.labelName(n) << " e="
         << lcl.labelName(e) << " s=" << lcl.labelName(s) << " w="
         << lcl.labelName(w);
      violations.push_back({v, os.str()});
    }
  }
  return violations;
}

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels) {
  return violationsKernel<true>(torus, lcl, labels) == 0;
}

std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels) {
  return violationsKernel<false>(torus, lcl, labels);
}

std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch) {
  const std::size_t count = batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::uint8_t> feasible(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    feasible[i] = violationsKernel<true>(
                      torus, lcl, labelsBatch.subspan(i * stride, stride)) == 0
                      ? 1
                      : 0;
  }
  return feasible;
}

std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl,
    std::span<const int> labelsBatch) {
  const std::size_t count = batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::int64_t> violations(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    violations[i] = violationsKernel<false>(
        torus, lcl, labelsBatch.subspan(i * stride, stride));
  }
  return violations;
}

std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances) {
  std::vector<std::uint8_t> feasible(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const LabellingInstance& instance = instances[i];
    if (instance.torus == nullptr) {
      throw std::invalid_argument("verifyBatch: null torus in instance");
    }
    feasible[i] =
        violationsKernel<true>(*instance.torus, lcl, instance.labels) == 0
            ? 1
            : 0;
  }
  return feasible;
}

namespace verifier_detail {

bool allLabelsInRange(int sigma, std::span<const int> labels) {
  for (int label : labels) {
    if (static_cast<unsigned>(label) >= static_cast<unsigned>(sigma)) {
      return false;
    }
  }
  return true;
}

std::size_t batchCount(const Torus2D& torus,
                       std::span<const int> labelsBatch) {
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  if (stride == 0 || labelsBatch.size() % stride != 0) {
    throw std::invalid_argument(
        "verifier: batch size is not a multiple of torus.size()");
  }
  return labelsBatch.size() / stride;
}

std::int64_t tableViolationRows(const LclTable& table, int n,
                                const int* labels, int yBegin, int yEnd,
                                bool stopAtFirst) {
  return stopAtFirst
             ? tableViolations<true>(table, n, labels, yBegin, yEnd)
             : tableViolations<false>(table, n, labels, yBegin, yEnd);
}

std::int64_t functionalViolationRange(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels, int vBegin,
                                      int vEnd, bool stopAtFirst) {
  return stopAtFirst
             ? functionalViolations<true>(torus, lcl, labels, vBegin, vEnd)
             : functionalViolations<false>(torus, lcl, labels, vBegin, vEnd);
}

}  // namespace verifier_detail

std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels) {
  std::ostringstream os;
  for (int y = torus.n() - 1; y >= 0; --y) {
    for (int x = 0; x < torus.n(); ++x) {
      if (x > 0) os << " ";
      os << lcl.labelName(labels[static_cast<std::size_t>(torus.id(x, y))]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lclgrid
