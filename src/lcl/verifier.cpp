#include "lcl/verifier.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lcl/verify_probes.hpp"

// Runtime-dispatched wide clones of the bit-sliced word loops, following
// the transpose's dispatch mechanism in label_planes.cpp: baseline builds
// compile the AVX2/AVX-512 workers with target attributes and select them
// per call from bitslice::simdTier() (which folds in the LCLGRID_SIMD cap
// and the host CPU). Every tier produces bit-identical counts.
#if defined(__SSE2__)
#include <immintrin.h>
#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
#define LCLGRID_VERIFY_AVX2 1
#define LCLGRID_VERIFY_AVX512 1
#endif
#endif

namespace lclgrid {

namespace {

/// Table-driven kernel over grid rows [yBegin, yEnd) of one labelling, laid
/// out row-major (node y*n+x). Requires every label in [0, sigma).
/// Neighbour lookups use row pointers instead of Torus2D::step, so the
/// inner loop is a handful of loads, one table row fetch and a bit test per
/// node. The row-range form is what the engine's sharded verifier
/// distributes across threads (per-shard accumulators, combined in shard
/// order, hence bit-identical to one serial sweep).
template <bool StopAtFirst>
std::int64_t tableViolations(const LclTable& table, int n, const int* labels,
                             int yBegin, int yEnd) {
  std::int64_t bad = 0;
  for (int y = yBegin; y < yEnd; ++y) {
    const int* row = labels + static_cast<std::size_t>(y) * n;
    const int* rowNorth =
        labels + static_cast<std::size_t>(y + 1 == n ? 0 : y + 1) * n;
    const int* rowSouth =
        labels + static_cast<std::size_t>(y == 0 ? n - 1 : y - 1) * n;
    for (int x = 0; x < n; ++x) {
      const int east = row[x + 1 == n ? 0 : x + 1];
      const int west = row[x == 0 ? n - 1 : x - 1];
      const std::uint64_t mask =
          table.centreMask(rowNorth[x], east, rowSouth[x], west);
      if (!((mask >> row[x]) & 1u)) {
        if constexpr (StopAtFirst) return 1;
        ++bad;
      }
    }
  }
  return bad;
}

// --- wide row workers for the fused notEqual kernel ------------------------
// One call processes one grid row: pass 1 fills hE[w] (the horizontal
// east-pair stream, wrap bit in the last word), pass 2 derives the west
// stream from hE, fuses the vertical streams and counts, writing vUp for
// reuse as the next row's down stream. The scalar single-pass loop in
// notEqualPlanesViolations computes the same words in a different order;
// the counts are identical bit for bit. Workers take a runtime plane count
// B so one function pointer type covers every alphabet.

using NotEqualRowFn = std::int64_t (*)(const std::uint64_t* curP,
                                       const std::uint64_t* nextP,
                                       const std::uint64_t* vPrev,
                                       std::uint64_t* vUp, std::uint64_t* hE,
                                       int B, std::size_t W,
                                       std::uint64_t tail, int topShift,
                                       bool stopAtFirst);

#if defined(LCLGRID_VERIFY_AVX2)

#if !defined(__AVX2__)
__attribute__((target("avx2")))
#endif
std::int64_t notEqualRowAvx2(const std::uint64_t* curP,
                             const std::uint64_t* nextP,
                             const std::uint64_t* vPrev, std::uint64_t* vUp,
                             std::uint64_t* hE, int B, std::size_t W,
                             std::uint64_t tail, int topShift,
                             bool stopAtFirst) {
  // Pass 1: hE. The vector body reads plane[w + 1 .. w + 4], so it stops
  // before the last word, whose east stream needs the wrap bit anyway.
  std::size_t w = 0;
  for (; w + 5 <= W; w += 4) {
    __m256i h = _mm256_setzero_si256();
    for (int b = 0; b < B; ++b) {
      const std::uint64_t* plane = curP + static_cast<std::size_t>(b) * W;
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + w));
      const __m256i shifted =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + w + 1));
      const __m256i east = _mm256_or_si256(_mm256_srli_epi64(c, 1),
                                           _mm256_slli_epi64(shifted, 63));
      h = _mm256_or_si256(h, _mm256_xor_si256(c, east));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hE + w), h);
  }
  for (; w < W; ++w) {
    std::uint64_t h = 0;
    for (int b = 0; b < B; ++b) {
      const std::uint64_t* plane = curP + static_cast<std::size_t>(b) * W;
      std::uint64_t east = plane[w] >> 1;
      if (w + 1 < W) {
        east |= plane[w + 1] << 63;
      } else {
        east |= (plane[0] & 1u) << topShift;
      }
      h |= plane[w] ^ east;
    }
    hE[w] = h;
  }
  // Pass 2: west from hE, vertical streams, count. Word 0 and the tail
  // words run scalar (wrap carry / tail mask).
  std::int64_t bad = 0;
  {
    const std::uint64_t hW = (hE[0] << 1) | ((hE[W - 1] >> topShift) & 1u);
    std::uint64_t vU = 0;
    for (int b = 0; b < B; ++b) {
      vU |= curP[static_cast<std::size_t>(b) * W] ^
            nextP[static_cast<std::size_t>(b) * W];
    }
    vUp[0] = vU;
    const std::uint64_t ok = hE[0] & hW & vU & vPrev[0];
    const std::uint64_t violated = ~ok & (W == 1 ? tail : ~std::uint64_t{0});
    if (violated != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(violated);
    }
  }
  std::size_t v = 1;
  for (; v + 4 < W; v += 4) {
    const __m256i he =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hE + v));
    const __m256i hePrev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hE + v - 1));
    const __m256i hw = _mm256_or_si256(_mm256_slli_epi64(he, 1),
                                       _mm256_srli_epi64(hePrev, 63));
    __m256i vu = _mm256_setzero_si256();
    for (int b = 0; b < B; ++b) {
      const std::size_t off = static_cast<std::size_t>(b) * W + v;
      vu = _mm256_or_si256(
          vu, _mm256_xor_si256(_mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(curP + off)),
                               _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                   nextP + off))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vUp + v), vu);
    const __m256i ok = _mm256_and_si256(
        _mm256_and_si256(he, hw),
        _mm256_and_si256(vu, _mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(vPrev + v))));
    const __m256i violated = _mm256_andnot_si256(ok, _mm256_set1_epi64x(-1));
    if (!_mm256_testz_si256(violated, violated)) {
      if (stopAtFirst) return 1;
      alignas(32) std::uint64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), violated);
      bad += std::popcount(lanes[0]) + std::popcount(lanes[1]) +
             std::popcount(lanes[2]) + std::popcount(lanes[3]);
    }
  }
  for (; v < W; ++v) {
    const std::uint64_t hW = (hE[v] << 1) | (hE[v - 1] >> 63);
    std::uint64_t vU = 0;
    for (int b = 0; b < B; ++b) {
      vU |= curP[static_cast<std::size_t>(b) * W + v] ^
            nextP[static_cast<std::size_t>(b) * W + v];
    }
    vUp[v] = vU;
    const std::uint64_t ok = hE[v] & hW & vU & vPrev[v];
    const std::uint64_t violated =
        ~ok & (v + 1 == W ? tail : ~std::uint64_t{0});
    if (violated != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(violated);
    }
  }
  return bad;
}

#endif  // LCLGRID_VERIFY_AVX2

#if defined(LCLGRID_VERIFY_AVX512)

#if !defined(__AVX512F__) || !defined(__AVX512VPOPCNTDQ__)
__attribute__((target("avx512f,avx512vpopcntdq")))
#endif
std::int64_t notEqualRowAvx512(const std::uint64_t* curP,
                               const std::uint64_t* nextP,
                               const std::uint64_t* vPrev, std::uint64_t* vUp,
                               std::uint64_t* hE, int B, std::size_t W,
                               std::uint64_t tail, int topShift,
                               bool stopAtFirst) {
  std::size_t w = 0;
  for (; w + 9 <= W; w += 8) {
    __m512i h = _mm512_setzero_si512();
    for (int b = 0; b < B; ++b) {
      const std::uint64_t* plane = curP + static_cast<std::size_t>(b) * W;
      const __m512i c = _mm512_loadu_si512(plane + w);
      const __m512i shifted = _mm512_loadu_si512(plane + w + 1);
      const __m512i east = _mm512_or_si512(_mm512_srli_epi64(c, 1),
                                           _mm512_slli_epi64(shifted, 63));
      h = _mm512_or_si512(h, _mm512_xor_si512(c, east));
    }
    _mm512_storeu_si512(hE + w, h);
  }
  for (; w < W; ++w) {
    std::uint64_t h = 0;
    for (int b = 0; b < B; ++b) {
      const std::uint64_t* plane = curP + static_cast<std::size_t>(b) * W;
      std::uint64_t east = plane[w] >> 1;
      if (w + 1 < W) {
        east |= plane[w + 1] << 63;
      } else {
        east |= (plane[0] & 1u) << topShift;
      }
      h |= plane[w] ^ east;
    }
    hE[w] = h;
  }
  std::int64_t bad = 0;
  {
    const std::uint64_t hW = (hE[0] << 1) | ((hE[W - 1] >> topShift) & 1u);
    std::uint64_t vU = 0;
    for (int b = 0; b < B; ++b) {
      vU |= curP[static_cast<std::size_t>(b) * W] ^
            nextP[static_cast<std::size_t>(b) * W];
    }
    vUp[0] = vU;
    const std::uint64_t ok = hE[0] & hW & vU & vPrev[0];
    const std::uint64_t violated = ~ok & (W == 1 ? tail : ~std::uint64_t{0});
    if (violated != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(violated);
    }
  }
  std::size_t v = 1;
  for (; v + 8 < W; v += 8) {
    const __m512i he = _mm512_loadu_si512(hE + v);
    const __m512i hePrev = _mm512_loadu_si512(hE + v - 1);
    const __m512i hw = _mm512_or_si512(_mm512_slli_epi64(he, 1),
                                       _mm512_srli_epi64(hePrev, 63));
    __m512i vu = _mm512_setzero_si512();
    for (int b = 0; b < B; ++b) {
      const std::size_t off = static_cast<std::size_t>(b) * W + v;
      vu = _mm512_or_si512(vu,
                           _mm512_xor_si512(_mm512_loadu_si512(curP + off),
                                            _mm512_loadu_si512(nextP + off)));
    }
    _mm512_storeu_si512(vUp + v, vu);
    const __m512i ok = _mm512_and_si512(
        _mm512_and_si512(he, hw),
        _mm512_and_si512(vu, _mm512_loadu_si512(vPrev + v)));
    const __m512i violated =
        _mm512_andnot_si512(ok, _mm512_set1_epi64(-1));
    if (_mm512_test_epi64_mask(violated, violated) != 0) {
      if (stopAtFirst) return 1;
      bad += _mm512_reduce_add_epi64(_mm512_popcnt_epi64(violated));
    }
  }
  for (; v < W; ++v) {
    const std::uint64_t hW = (hE[v] << 1) | (hE[v - 1] >> 63);
    std::uint64_t vU = 0;
    for (int b = 0; b < B; ++b) {
      vU |= curP[static_cast<std::size_t>(b) * W + v] ^
            nextP[static_cast<std::size_t>(b) * W + v];
    }
    vUp[v] = vU;
    const std::uint64_t ok = hE[v] & hW & vU & vPrev[v];
    const std::uint64_t violated =
        ~ok & (v + 1 == W ? tail : ~std::uint64_t{0});
    if (violated != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(violated);
    }
  }
  return bad;
}

#endif  // LCLGRID_VERIFY_AVX512

/// The widest worker worth running at this row width (the vector bodies
/// need enough words to engage; below the floor the scalar loop wins), or
/// nullptr for the scalar path. simdTier() folds in the LCLGRID_SIMD cap
/// and host support, so a capped process takes the exact fallback path a
/// narrower machine would.
NotEqualRowFn selectNotEqualRowFn(std::size_t W) {
#if defined(LCLGRID_VERIFY_AVX512)
  if (W >= 12 && bitslice::simdTier() >= bitslice::SimdTier::kAvx512) {
    return &notEqualRowAvx512;
  }
#endif
#if defined(LCLGRID_VERIFY_AVX2)
  if (W >= 6 && bitslice::simdTier() >= bitslice::SimdTier::kAvx2) {
    return &notEqualRowAvx2;
  }
#endif
  (void)W;
  return nullptr;
}

/// Fused fast path of the pair-planes kernel for colouring-shaped tables:
/// both networks are `lo != hi`, so a pair stream is one XOR + OR per
/// plane and the whole row collapses into a single word pass -- the east
/// stream is read from the pre-shifted planes, the west stream is derived
/// from the east stream with a carried bit instead of a buffer pass, and
/// the up stream is stored for reuse as the next row's down stream.
/// Compile-time B keeps the plane loops unrolled. Wide rows dispatch each
/// row to the AVX2/AVX-512 worker selected above instead.
template <bool StopAtFirst, int B>
std::int64_t notEqualPlanesViolations(int n, int nRows, const int* labels,
                                      int yBegin, int yEnd) {
  const std::size_t W = bitslice::wordsPerRow(n);
  const std::uint64_t tail = bitslice::rowTailMask(n);
  const int topShift = (n - 1) & 63;
  const NotEqualRowFn rowFn = selectNotEqualRowFn(W);
  std::vector<std::uint64_t> store(
      (static_cast<std::size_t>(B) * 3 + 3) * W);
  std::uint64_t* prevP = store.data();
  std::uint64_t* curP = prevP + static_cast<std::size_t>(B) * W;
  std::uint64_t* nextP = curP + static_cast<std::size_t>(B) * W;
  std::uint64_t* vUp = nextP + static_cast<std::size_t>(B) * W;
  std::uint64_t* vPrev = vUp + W;
  std::uint64_t* hBuf = vPrev + W;  // hE scratch of the wide workers
  // East word w of plane b, in-sweep: the one-bit cyclic shift of the
  // cur plane, with the wrap bit (x = n-1 <- x = 0) landing in the last
  // word -- no shifted-plane buffer pass needed.
  const auto eastWord = [&](const std::uint64_t* plane, std::size_t w) {
    std::uint64_t word = plane[w] >> 1;
    if (w + 1 < W) {
      word |= plane[w + 1] << 63;
    } else {
      word |= (plane[0] & 1u) << topShift;
    }
    return word;
  };
  const auto rowAt = [&](int y) {
    const int wrapped = y < 0 ? y + nRows : (y >= nRows ? y - nRows : y);
    return labels + static_cast<std::size_t>(wrapped) * n;
  };
  bitslice::transposeRow(rowAt(yBegin - 1), n, B, prevP);
  bitslice::transposeRow(rowAt(yBegin), n, B, curP);
  for (std::size_t w = 0; w < W; ++w) {
    std::uint64_t diff = 0;
    for (int b = 0; b < B; ++b) {
      diff |= prevP[static_cast<std::size_t>(b) * W + w] ^
              curP[static_cast<std::size_t>(b) * W + w];
    }
    vPrev[w] = diff;
  }
  std::int64_t bad = 0;
  for (int y = yBegin; y < yEnd; ++y) {
    bitslice::transposeRow(rowAt(y + 1), n, B, nextP);
    if (rowFn != nullptr) {
      const std::int64_t rowBad = rowFn(curP, nextP, vPrev, vUp, hBuf, B, W,
                                        tail, topShift, StopAtFirst);
      if (rowBad != 0) {
        if constexpr (StopAtFirst) return 1;
        bad += rowBad;
      }
    } else {
      // The west stream needs the east stream's wrap bit (x = n-1, always
      // in the last word) before the forward sweep reaches it.
      std::uint64_t hLast = 0;
      for (int b = 0; b < B; ++b) {
        const std::uint64_t* plane = curP + static_cast<std::size_t>(b) * W;
        hLast |= plane[W - 1] ^ eastWord(plane, W - 1);
      }
      std::uint64_t carry = (hLast >> topShift) & 1u;
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t hE;
        if (w + 1 == W) {
          hE = hLast;
        } else {
          hE = 0;
          for (int b = 0; b < B; ++b) {
            const std::uint64_t* plane =
                curP + static_cast<std::size_t>(b) * W;
            hE |= plane[w] ^ eastWord(plane, w);
          }
        }
        const std::uint64_t hW = (hE << 1) | carry;
        carry = hE >> 63;
        std::uint64_t vU = 0;
        for (int b = 0; b < B; ++b) {
          vU |= curP[static_cast<std::size_t>(b) * W + w] ^
                nextP[static_cast<std::size_t>(b) * W + w];
        }
        vUp[w] = vU;
        const std::uint64_t ok = hE & hW & vU & vPrev[w];
        const std::uint64_t violated =
            ~ok & (w + 1 == W ? tail : ~std::uint64_t{0});
        if (violated != 0) {
          if constexpr (StopAtFirst) return 1;
          bad += std::popcount(violated);
        }
      }
    }
    std::uint64_t* spare = prevP;
    prevP = curP;
    curP = nextP;
    nextP = spare;
    std::swap(vPrev, vUp);
  }
  return bad;
}

/// Bit-sliced kernel, pair-planes shape, over grid rows [yBegin, yEnd) of
/// an nRows x n row-major labelling (rows wrap cyclically, so a shard is
/// self-contained). Rows are transposed into rolling prev/cur/next
/// bit-plane buffers; the h/v pair networks then decide 64 nodes per word:
/// node x of row y is feasible iff
///   H(c[x-1], c[x]) & H(c[x], c[x+1]) & V(c[y-1][x], c) & V(c, c[y+1][x]),
/// where the west stream is the east stream shifted one bit and the
/// down stream is the previous row's up stream (both rolled, so every
/// pair network evaluates once per row).
template <bool StopAtFirst>
std::int64_t pairPlanesViolations(const bitslice::BitslicePlan& plan, int n,
                                  int nRows, const int* labels, int yBegin,
                                  int yEnd) {
  if (plan.h.notEqual && plan.v.notEqual) {
    switch (plan.planes) {
      case 1:
        return notEqualPlanesViolations<StopAtFirst, 1>(n, nRows, labels,
                                                        yBegin, yEnd);
      case 2:
        return notEqualPlanesViolations<StopAtFirst, 2>(n, nRows, labels,
                                                        yBegin, yEnd);
      case 3:
        return notEqualPlanesViolations<StopAtFirst, 3>(n, nRows, labels,
                                                        yBegin, yEnd);
      default:
        break;  // unreachable for sigma <= 8; fall through to generic
    }
  }
  const int B = plan.planes;
  const std::size_t W = bitslice::wordsPerRow(n);
  const std::uint64_t tail = bitslice::rowTailMask(n);
  std::vector<std::uint64_t> store(
      (static_cast<std::size_t>(B) * 4 + 4) * W);
  std::uint64_t* prevP = store.data();
  std::uint64_t* curP = prevP + static_cast<std::size_t>(B) * W;
  std::uint64_t* nextP = curP + static_cast<std::size_t>(B) * W;
  std::uint64_t* eastP = nextP + static_cast<std::size_t>(B) * W;
  std::uint64_t* hEast = eastP + static_cast<std::size_t>(B) * W;
  std::uint64_t* hWest = hEast + W;
  std::uint64_t* vUp = hWest + W;
  std::uint64_t* vPrev = vUp + W;
  const auto rowAt = [&](int y) {
    const int wrapped = y < 0 ? y + nRows : (y >= nRows ? y - nRows : y);
    return labels + static_cast<std::size_t>(wrapped) * n;
  };
  bitslice::transposeRow(rowAt(yBegin - 1), n, B, prevP);
  bitslice::transposeRow(rowAt(yBegin), n, B, curP);
  plan.v.eval(prevP, curP, W, vPrev);  // bit x = V(c[y-1][x], c[y][x])
  std::int64_t bad = 0;
  for (int y = yBegin; y < yEnd; ++y) {
    bitslice::transposeRow(rowAt(y + 1), n, B, nextP);
    for (int b = 0; b < B; ++b) {
      bitslice::shiftUpCyclic(curP + static_cast<std::size_t>(b) * W,
                              eastP + static_cast<std::size_t>(b) * W, n);
    }
    plan.h.eval(curP, eastP, W, hEast);   // bit x = H(c[x], c[x+1])
    bitslice::shiftDownCyclic(hEast, hWest, n);  // bit x = H(c[x-1], c[x])
    plan.v.eval(curP, nextP, W, vUp);     // bit x = V(c[y][x], c[y+1][x])
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t ok = hEast[w] & hWest[w] & vUp[w] & vPrev[w];
      const std::uint64_t violated =
          ~ok & (w + 1 == W ? tail : ~std::uint64_t{0});
      if (violated != 0) {
        if constexpr (StopAtFirst) return 1;
        bad += std::popcount(violated);
      }
    }
    std::uint64_t* spare = prevP;
    prevP = curP;
    curP = nextP;
    nextP = spare;
    std::swap(vPrev, vUp);
  }
  return bad;
}

// --- packed-label helpers (the sigma <= 4 non-decomposable tier) ---------

std::size_t byteWords(int n) {
  return (static_cast<std::size_t>(n) + 7) / 8;
}

std::uint64_t byteTailMask(int n) {
  const int rem = n % 8;
  return rem == 0 ? ~std::uint64_t{0}
                  : (std::uint64_t{1} << (8 * rem)) - 1;
}

/// Packs one row of n labels (each < 4) into byte lanes, 8 per word;
/// lanes >= n are zero.
void packByteRow(const int* labels, int n, std::uint64_t* out) {
  const std::size_t W8 = byteWords(n);
  for (std::size_t w = 0; w < W8; ++w) {
    const int base = static_cast<int>(w) * 8;
    const int m = std::min(8, n - base);
    std::uint64_t word = 0;
    for (int i = 0; i < m; ++i) {
      word |= static_cast<std::uint64_t>(labels[base + i]) << (8 * i);
    }
    out[w] = word;
  }
}

/// dst lane x = src lane (x + 1 mod n) / (x - 1 mod n): the byte-lane
/// siblings of the bit shifts in label_planes.hpp.
void shiftByteUp(const std::uint64_t* src, std::uint64_t* dst, int n) {
  const std::size_t W8 = byteWords(n);
  for (std::size_t w = 0; w + 1 < W8; ++w) {
    dst[w] = (src[w] >> 8) | (src[w + 1] << 56);
  }
  dst[W8 - 1] = src[W8 - 1] >> 8;
  const int top = n - 1;
  dst[top / 8] |= (src[0] & 0xFFu) << (8 * (top % 8));
}

void shiftByteDown(const std::uint64_t* src, std::uint64_t* dst, int n) {
  const std::size_t W8 = byteWords(n);
  for (std::size_t w = W8; w-- > 1;) {
    dst[w] = (src[w] << 8) | (src[w - 1] >> 56);
  }
  dst[0] = src[0] << 8;
  const int top = n - 1;
  dst[0] |= (src[top / 8] >> (8 * (top % 8))) & 0xFFu;
  dst[W8 - 1] &= byteTailMask(n);
}

// --- wide row workers for the nibble-LUT kernel ----------------------------
// One call decides one packed row. The AVX2 worker gathers 8 LUT entries
// per word from a 32-bit-expanded copy of the table and variable-shifts by
// the west lanes; the AVX-512 worker holds the whole 256-byte table in
// four registers and resolves 64 nodes per step with two byte permutes, a
// sign-bit blend and a byte test. Tail lanes run the scalar extraction, so
// counts are bit-identical to the scalar loop on every row width.

using NibbleRowFn = std::int64_t (*)(const std::uint8_t* byWest,
                                     const std::uint32_t* lut32,
                                     const std::uint64_t* south,
                                     const std::uint64_t* cur,
                                     const std::uint64_t* north,
                                     const std::uint64_t* east,
                                     const std::uint64_t* west, int n,
                                     bool stopAtFirst);

/// The scalar per-lane extraction over words [wBegin, byteWords(n)), shared
/// by the wide workers' tails.
std::int64_t nibbleLanesScalar(const std::uint8_t* byWest,
                               const std::uint64_t* south,
                               const std::uint64_t* cur,
                               const std::uint64_t* north,
                               const std::uint64_t* east,
                               const std::uint64_t* west, int n,
                               std::size_t wBegin, bool stopAtFirst) {
  std::int64_t bad = 0;
  const std::size_t W8 = byteWords(n);
  for (std::size_t w = wBegin; w < W8; ++w) {
    std::uint64_t key =
        cur[w] | (north[w] << 2) | (east[w] << 4) | (south[w] << 6);
    std::uint64_t wv = west[w];
    const int m = std::min(8, n - static_cast<int>(w) * 8);
    for (int i = 0; i < m; ++i) {
      if (!((byWest[static_cast<std::size_t>(key & 0xFFu)] >> (wv & 3u)) &
            1u)) {
        if (stopAtFirst) return 1;
        ++bad;
      }
      key >>= 8;
      wv >>= 8;
    }
  }
  return bad;
}

#if defined(LCLGRID_VERIFY_AVX2)

#if !defined(__AVX2__)
__attribute__((target("avx2")))
#endif
std::int64_t nibbleRowAvx2(const std::uint8_t* byWest,
                           const std::uint32_t* lut32,
                           const std::uint64_t* south,
                           const std::uint64_t* cur,
                           const std::uint64_t* north,
                           const std::uint64_t* east,
                           const std::uint64_t* west, int n,
                           bool stopAtFirst) {
  std::int64_t bad = 0;
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t w = 0;
  for (; (w + 1) * 8 <= static_cast<std::size_t>(n); ++w) {
    // Disjoint two-bit fields, so the lane-parallel ORs cannot carry.
    const std::uint64_t key =
        cur[w] | (north[w] << 2) | (east[w] << 4) | (south[w] << 6);
    const __m256i keys = _mm256_cvtepu8_epi32(
        _mm_cvtsi64_si128(static_cast<long long>(key)));
    const __m256i wests = _mm256_cvtepu8_epi32(
        _mm_cvtsi64_si128(static_cast<long long>(west[w])));
    const __m256i entry = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(lut32), keys, 4);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi32(entry, wests), one);
    const __m256i violated =
        _mm256_cmpeq_epi32(bit, _mm256_setzero_si256());
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(violated));
    if (mask != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(static_cast<unsigned>(mask));
    }
  }
  const std::int64_t tailBad =
      nibbleLanesScalar(byWest, south, cur, north, east, west, n, w,
                        stopAtFirst);
  if (stopAtFirst && tailBad > 0) return 1;
  return bad + tailBad;
}

#endif  // LCLGRID_VERIFY_AVX2

#if defined(LCLGRID_VERIFY_AVX512)

#if !defined(__AVX512F__) || !defined(__AVX512BW__) || !defined(__AVX512VBMI__)
__attribute__((target("avx512f,avx512bw,avx512vbmi")))
#endif
std::int64_t nibbleRowAvx512(const std::uint8_t* byWest,
                             const std::uint32_t* /*lut32*/,
                             const std::uint64_t* south,
                             const std::uint64_t* cur,
                             const std::uint64_t* north,
                             const std::uint64_t* east,
                             const std::uint64_t* west, int n,
                             bool stopAtFirst) {
  std::int64_t bad = 0;
  // The whole 256-entry table in four registers; permutex2var reads index
  // bits [6:0] and the key's bit 7 blends the halves.
  const __m512i z0 = _mm512_loadu_si512(byWest);
  const __m512i z1 = _mm512_loadu_si512(byWest + 64);
  const __m512i z2 = _mm512_loadu_si512(byWest + 128);
  const __m512i z3 = _mm512_loadu_si512(byWest + 192);
  // shuffle_epi8 indexes within 16-byte groups, so {1, 2, 4, 8} repeated
  // per dword turns a west lane (0..3) into its bit mask 1 << west.
  const __m512i westBitTable = _mm512_set1_epi32(0x08040201);
  std::size_t w = 0;
  for (; (w + 8) * 8 <= static_cast<std::size_t>(n); w += 8) {
    const __m512i c = _mm512_loadu_si512(cur + w);
    const __m512i nrt = _mm512_loadu_si512(north + w);
    const __m512i e = _mm512_loadu_si512(east + w);
    const __m512i s = _mm512_loadu_si512(south + w);
    const __m512i wst = _mm512_loadu_si512(west + w);
    const __m512i key = _mm512_or_si512(
        _mm512_or_si512(c, _mm512_slli_epi64(nrt, 2)),
        _mm512_or_si512(_mm512_slli_epi64(e, 4), _mm512_slli_epi64(s, 6)));
    const __mmask64 high = _mm512_movepi8_mask(key);
    const __m512i lowVal = _mm512_permutex2var_epi8(z0, key, z1);
    const __m512i highVal = _mm512_permutex2var_epi8(z2, key, z3);
    const __m512i entry = _mm512_mask_blend_epi8(high, lowVal, highVal);
    const __m512i westBit = _mm512_shuffle_epi8(westBitTable, wst);
    const __mmask64 ok = _mm512_test_epi8_mask(entry, westBit);
    const std::uint64_t violated = ~static_cast<std::uint64_t>(ok);
    if (violated != 0) {
      if (stopAtFirst) return 1;
      bad += std::popcount(violated);
    }
  }
  const std::int64_t tailBad =
      nibbleLanesScalar(byWest, south, cur, north, east, west, n, w,
                        stopAtFirst);
  if (stopAtFirst && tailBad > 0) return 1;
  return bad + tailBad;
}

#endif  // LCLGRID_VERIFY_AVX512

/// Widest nibble worker worth running at this row length (floors keep rows
/// with no full vector word on the scalar loop), or nullptr for scalar.
NibbleRowFn selectNibbleRowFn(int n) {
#if defined(LCLGRID_VERIFY_AVX512)
  if (n >= 64 && bitslice::simdTier() >= bitslice::SimdTier::kAvx512) {
    return &nibbleRowAvx512;
  }
#endif
#if defined(LCLGRID_VERIFY_AVX2)
  if (n >= 16 && bitslice::simdTier() >= bitslice::SimdTier::kAvx2) {
    return &nibbleRowAvx2;
  }
#endif
  (void)n;
  return nullptr;
}

/// Bit-sliced kernel, nibble-LUT shape: rows packed into byte lanes
/// (rolling south/cur/north buffers plus shifted east/west views of the
/// current row). The two-bit label fields c, n, e, s are fused into one
/// key byte per node lane-parallel (three shift+ors per word of 8 nodes),
/// so the per-node work is one byte extraction into a 256-entry table of
/// per-west-label validity bits -- the LUT's low 8 index bits, with the
/// west label selecting the bit. Long rows dispatch to the gather/permute
/// workers above instead.
template <bool StopAtFirst>
std::int64_t nibbleViolations(const bitslice::NibbleLut& lut, int n,
                              int nRows, const int* labels, int yBegin,
                              int yEnd) {
  const std::array<std::uint8_t, 256>& byW = lut.byWest;
  const NibbleRowFn rowFn = selectNibbleRowFn(n);
  std::array<std::uint32_t, 256> lut32{};
  if (rowFn != nullptr) {
    // The AVX2 gather reads 32-bit entries; widen the byte table once.
    for (std::size_t i = 0; i < byW.size(); ++i) lut32[i] = byW[i];
  }
  const std::size_t W8 = byteWords(n);
  std::vector<std::uint64_t> store(5 * W8);
  std::uint64_t* south = store.data();
  std::uint64_t* cur = south + W8;
  std::uint64_t* north = cur + W8;
  std::uint64_t* east = north + W8;
  std::uint64_t* west = east + W8;
  const auto rowAt = [&](int y) {
    const int wrapped = y < 0 ? y + nRows : (y >= nRows ? y - nRows : y);
    return labels + static_cast<std::size_t>(wrapped) * n;
  };
  packByteRow(rowAt(yBegin - 1), n, south);
  packByteRow(rowAt(yBegin), n, cur);
  std::int64_t bad = 0;
  for (int y = yBegin; y < yEnd; ++y) {
    packByteRow(rowAt(y + 1), n, north);
    shiftByteUp(cur, east, n);
    shiftByteDown(cur, west, n);
    if (rowFn != nullptr) {
      const std::int64_t rowBad = rowFn(byW.data(), lut32.data(), south, cur,
                                        north, east, west, n, StopAtFirst);
      if (rowBad != 0) {
        if constexpr (StopAtFirst) return 1;
        bad += rowBad;
      }
    } else {
      for (std::size_t w = 0; w < W8; ++w) {
        // Disjoint two-bit fields, so the lane-parallel ORs cannot carry.
        std::uint64_t key =
            cur[w] | (north[w] << 2) | (east[w] << 4) | (south[w] << 6);
        std::uint64_t wv = west[w];
        const int m = std::min(8, n - static_cast<int>(w) * 8);
        for (int i = 0; i < m; ++i) {
          if (!((byW[static_cast<std::size_t>(key & 0xFFu)] >> (wv & 3u)) &
                1u)) {
            if constexpr (StopAtFirst) return 1;
            ++bad;
          }
          key >>= 8;
          wv >>= 8;
        }
      }
    }
    std::uint64_t* spare = south;
    south = cur;
    cur = north;
    north = spare;
  }
  return bad;
}

template <bool StopAtFirst>
std::int64_t bitsliceViolations(const bitslice::BitslicePlan& plan, int n,
                                int nRows, const int* labels, int yBegin,
                                int yEnd) {
  if (plan.kind == bitslice::BitslicePlan::Kind::kPairPlanes) {
    return pairPlanesViolations<StopAtFirst>(plan, n, nRows, labels, yBegin,
                                             yEnd);
  }
  return nibbleViolations<StopAtFirst>(plan.nibble, n, nRows, labels, yBegin,
                                       yEnd);
}

/// Fallback for uncompiled problems or out-of-alphabet labels, over nodes
/// [vBegin, vEnd): mirrors the seed's per-node loop. An out-of-alphabet
/// centre label is a violation; neighbourhoods are otherwise judged by
/// GridLcl::allows (which routes garbage neighbour labels to the raw
/// predicate, as the seed did).
template <bool StopAtFirst>
std::int64_t functionalViolations(const Torus2D& torus, const GridLcl& lcl,
                                  std::span<const int> labels, int vBegin,
                                  int vEnd) {
  std::int64_t bad = 0;
  for (int v = vBegin; v < vEnd; ++v) {
    const int c = labels[static_cast<std::size_t>(v)];
    bool violated;
    if (c < 0 || c >= lcl.sigma()) {
      violated = true;
    } else {
      const int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
      const int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
      const int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
      const int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
      violated = !lcl.allows(c, n, e, s, w);
    }
    if (violated) {
      if constexpr (StopAtFirst) return 1;
      ++bad;
    }
  }
  return bad;
}

template <bool StopAtFirst>
std::int64_t violationsKernel(const Torus2D& torus, const GridLcl& lcl,
                              std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
  using verify_probes::Tier;
  if (lcl.hasTable() &&
      verifier_detail::allLabelsInRange(lcl.sigma(), labels)) {
    if (verifier_detail::bitsliceSelected(lcl, torus.size())) {
      verify_probes::recordCall(Tier::kBitsliced, torus.size());
      telemetry::ScopedSpan span(verify_probes::spanName(Tier::kBitsliced));
      return bitsliceViolations<StopAtFirst>(*lcl.table().bitslicePlan(),
                                             torus.n(), torus.n(),
                                             labels.data(), 0, torus.n());
    }
    verify_probes::recordCall(Tier::kTable, torus.size());
    telemetry::ScopedSpan span(verify_probes::spanName(Tier::kTable));
    return tableViolations<StopAtFirst>(lcl.table(), torus.n(), labels.data(),
                                        0, torus.n());
  }
  verify_probes::recordCall(Tier::kFunctional, torus.size());
  telemetry::ScopedSpan span(verify_probes::spanName(Tier::kFunctional));
  return functionalViolations<StopAtFirst>(torus, lcl, labels, 0,
                                           torus.size());
}

}  // namespace

using verifier_detail::batchCount;

std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("listViolations: labelling size mismatch");
  }
  std::vector<Violation> violations;
  for (int v = 0; v < torus.size() &&
                  static_cast<int>(violations.size()) < maxReported;
       ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= lcl.sigma()) {
      violations.push_back({v, "label out of alphabet"});
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!lcl.allows(c, n, e, s, w)) {
      std::ostringstream os;
      auto [x, y] = torus.xy(v);
      os << "constraint violated at (" << x << "," << y << "): c="
         << lcl.labelName(c) << " n=" << lcl.labelName(n) << " e="
         << lcl.labelName(e) << " s=" << lcl.labelName(s) << " w="
         << lcl.labelName(w);
      violations.push_back({v, os.str()});
    }
  }
  return violations;
}

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels) {
  return violationsKernel<true>(torus, lcl, labels) == 0;
}

std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels) {
  return violationsKernel<false>(torus, lcl, labels);
}

std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch) {
  const std::size_t count = batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::uint8_t> feasible(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    feasible[i] = violationsKernel<true>(
                      torus, lcl, labelsBatch.subspan(i * stride, stride)) == 0
                      ? 1
                      : 0;
  }
  return feasible;
}

std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl,
    std::span<const int> labelsBatch) {
  const std::size_t count = batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::int64_t> violations(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    violations[i] = violationsKernel<false>(
        torus, lcl, labelsBatch.subspan(i * stride, stride));
  }
  return violations;
}

std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances) {
  std::vector<std::uint8_t> feasible(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const LabellingInstance& instance = instances[i];
    if (instance.torus == nullptr) {
      throw std::invalid_argument("verifyBatch: null torus in instance");
    }
    feasible[i] =
        violationsKernel<true>(*instance.torus, lcl, instance.labels) == 0
            ? 1
            : 0;
  }
  return feasible;
}

namespace verifier_detail {

bool allLabelsInRange(int sigma, std::span<const int> labels) {
  for (int label : labels) {
    if (static_cast<unsigned>(label) >= static_cast<unsigned>(sigma)) {
      return false;
    }
  }
  return true;
}

std::size_t batchCount(const Torus2D& torus,
                       std::span<const int> labelsBatch) {
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  if (stride == 0 || labelsBatch.size() % stride != 0) {
    throw std::invalid_argument(
        "verifier: batch size is not a multiple of torus.size()");
  }
  return labelsBatch.size() / stride;
}

std::int64_t tableViolationRows(const LclTable& table, int n,
                                const int* labels, int yBegin, int yEnd,
                                bool stopAtFirst) {
  return stopAtFirst
             ? tableViolations<true>(table, n, labels, yBegin, yEnd)
             : tableViolations<false>(table, n, labels, yBegin, yEnd);
}

bool bitsliceSelected(const GridLcl& lcl, long long nodes) {
  return bitslice::enabled() && nodes >= bitslice::kMinNodesForBitslice &&
         lcl.hasTable() && lcl.table().bitslicePlan() != nullptr;
}

std::int64_t bitsliceViolationRows(const LclTable& table, int n, int nRows,
                                   const int* labels, int yBegin, int yEnd,
                                   bool stopAtFirst) {
  const bitslice::BitslicePlan& plan = *table.bitslicePlan();
  return stopAtFirst ? bitsliceViolations<true>(plan, n, nRows, labels,
                                                yBegin, yEnd)
                     : bitsliceViolations<false>(plan, n, nRows, labels,
                                                 yBegin, yEnd);
}

std::int64_t functionalViolationRange(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels, int vBegin,
                                      int vEnd, bool stopAtFirst) {
  return stopAtFirst
             ? functionalViolations<true>(torus, lcl, labels, vBegin, vEnd)
             : functionalViolations<false>(torus, lcl, labels, vBegin, vEnd);
}

}  // namespace verifier_detail

std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels) {
  std::ostringstream os;
  for (int y = torus.n() - 1; y >= 0; --y) {
    for (int x = 0; x < torus.n(); ++x) {
      if (x > 0) os << " ";
      os << lcl.labelName(labels[static_cast<std::size_t>(torus.id(x, y))]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lclgrid
