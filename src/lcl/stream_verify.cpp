// Serial half of the streaming out-of-core verifier (lcl/stream_verify.hpp):
// the on-disk format (writer + memory-mapped reader) and the slab-walking
// pass shared with the engine's sharded overloads. The kernels themselves
// are the verifier_detail slices of the in-core engine, run zero-copy on
// the mapped payload, so counts are bit-identical by construction.
#include "lcl/stream_verify.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/verifier.hpp"
#include "lcl/verify_probes.hpp"
#include "support/faultpoint.hpp"
#include "support/timing.hpp"

#if __has_include(<unistd.h>)
#include <unistd.h>
#define LCLGRID_HAVE_FSYNC 1
#endif

namespace lclgrid {

// The payload is consumed in place as int32 labels.
static_assert(sizeof(int) == 4, "labelling files assume 32-bit int");

namespace {

using stream_format::kHeaderBytes;
using stream_format::kMagic;

std::FILE* asFile(void* file) { return static_cast<std::FILE*>(file); }

void put32le(unsigned char* out, std::uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xff);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xff);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xff);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xff);
}

std::uint32_t get32le(const std::byte* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void put64le(unsigned char* out, std::uint64_t value) {
  put32le(out, static_cast<std::uint32_t>(value & 0xffffffffu));
  put32le(out + 4, static_cast<std::uint32_t>(value >> 32));
}

std::uint64_t get64le(const unsigned char* in) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | in[i];
  return value;
}

/// n^dims with an overflow guard (the node count must also leave room for
/// the 4x byte size of the payload).
long long nodeCount(int n, int dims) {
  constexpr long long kMaxNodes = std::numeric_limits<long long>::max() / 8;
  long long nodes = 1;
  for (int axis = 0; axis < dims; ++axis) {
    if (nodes > kMaxNodes / n) {
      throw std::runtime_error("labelling file: node count overflows");
    }
    nodes *= n;
  }
  return nodes;
}

void checkHeaderFields(int sigma, int dims, int n) {
  if (sigma < 1 || dims < 1 || n < 1) {
    throw std::runtime_error(
        "labelling file: bad header field (sigma, dims and side must be "
        "positive)");
  }
}

}  // namespace

// --- writer ----------------------------------------------------------------

StreamLabellingWriter::StreamLabellingWriter(const std::string& path,
                                             int sigma, int dims, int n)
    : path_(path) {
  if (sigma < 1 || dims < 1 || n < 1) {
    throw std::invalid_argument(
        "StreamLabellingWriter: sigma, dims and side must be positive");
  }
  expected_ = nodeCount(n, dims);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("StreamLabellingWriter: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  unsigned char header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof(kMagic));
  put32le(header + 8, static_cast<std::uint32_t>(sigma));
  put32le(header + 12, static_cast<std::uint32_t>(dims));
  put32le(header + 16, static_cast<std::uint32_t>(n));
  put32le(header + 20, 0);  // reserved
  if (std::fwrite(header, 1, kHeaderBytes, file) != kHeaderBytes) {
    std::fclose(file);
    throw std::runtime_error("StreamLabellingWriter: header write failed '" +
                             path + "'");
  }
  file_ = file;
}

StreamLabellingWriter::~StreamLabellingWriter() {
  if (!closed_ && file_ != nullptr) std::fclose(asFile(file_));
}

void StreamLabellingWriter::appendLabels(std::span<const int> labels) {
  if (closed_ || file_ == nullptr) {
    throw std::logic_error("StreamLabellingWriter: writer is closed");
  }
  if (written_ + static_cast<long long>(labels.size()) > expected_) {
    throw std::runtime_error(
        "StreamLabellingWriter: more labels than side^dims '" + path_ + "'");
  }
  {
    // Injected disk failure: a short write counts the clamped prefix as
    // stored (the real partial-fwrite shape) and both fail typed.
    namespace fp = support::faultpoint;
    const auto fault = FAULT_POINT("stream.writer_append");
    if (fault.action == fp::Action::kErrno ||
        fault.action == fp::Action::kShort) {
      if (fault.action == fp::Action::kShort) {
        const auto clamp = std::min<long long>(
            fault.arg / static_cast<long long>(sizeof(int)),
            static_cast<long long>(labels.size()));
        written_ += clamp;
      }
      throw std::runtime_error(
          "StreamLabellingWriter: write failed '" + path_ + "': " +
          std::strerror(fault.action == fp::Action::kErrno ? fault.errnoValue
                                                           : ENOSPC));
    }
  }
  std::size_t stored;
  if constexpr (std::endian::native == std::endian::little) {
    stored = std::fwrite(labels.data(), sizeof(int), labels.size(),
                         asFile(file_));
  } else {
    stored = 0;
    unsigned char bytes[4];
    for (int label : labels) {
      put32le(bytes, static_cast<std::uint32_t>(label));
      if (std::fwrite(bytes, 1, 4, asFile(file_)) != 4) break;
      ++stored;
    }
  }
  written_ += static_cast<long long>(stored);
  if (stored != labels.size()) {
    throw std::runtime_error("StreamLabellingWriter: write failed '" + path_ +
                             "': " + std::strerror(errno));
  }
}

void StreamLabellingWriter::close() {
  if (closed_) return;
  closed_ = true;
  std::FILE* file = asFile(file_);
  file_ = nullptr;
  if (written_ != expected_) {
    if (file != nullptr) std::fclose(file);
    throw std::runtime_error(
        "StreamLabellingWriter: wrote " + std::to_string(written_) +
        " labels, expected " + std::to_string(expected_) + " '" + path_ + "'");
  }
  if (file == nullptr || std::fclose(file) != 0) {
    throw std::runtime_error("StreamLabellingWriter: close failed '" + path_ +
                             "'");
  }
}

void writeLabellingFile(const std::string& path, int sigma, int dims, int n,
                        std::span<const int> labels) {
  StreamLabellingWriter writer(path, sigma, dims, n);
  writer.appendLabels(labels);
  writer.close();
}

// --- reader ----------------------------------------------------------------

StreamLabelling::StreamLabelling(const std::string& path) : file_(path) {
  if constexpr (std::endian::native != std::endian::little) {
    throw std::runtime_error(
        "StreamLabelling: big-endian hosts are not supported (the payload "
        "is consumed in place as little-endian int32)");
  }
  if (file_.size() < kHeaderBytes) {
    throw std::runtime_error("labelling file: truncated header '" + path +
                             "'");
  }
  if (std::memcmp(file_.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("labelling file: bad magic '" + path + "'");
  }
  const std::byte* header = file_.data();
  const std::uint32_t sigma = get32le(header + 8);
  const std::uint32_t dims = get32le(header + 12);
  const std::uint32_t n = get32le(header + 16);
  const std::uint32_t reserved = get32le(header + 20);
  constexpr std::uint32_t kMaxField =
      static_cast<std::uint32_t>(std::numeric_limits<int>::max());
  if (sigma > kMaxField || dims > kMaxField || n > kMaxField ||
      reserved != 0) {
    throw std::runtime_error("labelling file: bad header field '" + path +
                             "'");
  }
  sigma_ = static_cast<int>(sigma);
  dims_ = static_cast<int>(dims);
  n_ = static_cast<int>(n);
  checkHeaderFields(sigma_, dims_, n_);
  size_ = nodeCount(n_, dims_);
  const std::size_t expectedBytes =
      kHeaderBytes + static_cast<std::size_t>(size_) * sizeof(int);
  if (file_.size() != expectedBytes) {
    throw std::runtime_error(
        "labelling file: payload size mismatch (truncated or trailing "
        "bytes) '" + path + "'");
  }
}

const int* StreamLabelling::labels() const {
  return reinterpret_cast<const int*>(file_.data() + kHeaderBytes);
}

void StreamLabelling::dropRows(long long rowBegin, long long rowEnd) const {
  if (rowEnd <= rowBegin) return;
  const std::size_t rowBytes = static_cast<std::size_t>(n_) * sizeof(int);
  file_.dropRange(kHeaderBytes + static_cast<std::size_t>(rowBegin) * rowBytes,
                  static_cast<std::size_t>(rowEnd - rowBegin) * rowBytes);
}

std::uint64_t StreamLabelling::fingerprint() const {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = kOffset;
  auto mixByte = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= kPrime;
  };
  auto mix64 = [&mixByte](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) mixByte((value >> (8 * i)) & 0xff);
  };
  mix64(static_cast<std::uint64_t>(sigma_));
  mix64(static_cast<std::uint64_t>(dims_));
  mix64(static_cast<std::uint64_t>(n_));
  mix64(static_cast<std::uint64_t>(size_));
  const std::byte* payload = file_.data() + kHeaderBytes;
  const std::size_t bytes = file_.size() - kHeaderBytes;
  const std::size_t sample = std::min<std::size_t>(4096, bytes);
  for (std::size_t i = 0; i < sample; ++i) {
    mixByte(static_cast<unsigned char>(payload[i]));
  }
  for (std::size_t i = bytes - sample; i < bytes; ++i) {
    mixByte(static_cast<unsigned char>(payload[i]));
  }
  return hash;
}

// --- checkpoints ------------------------------------------------------------

namespace {

/// "LCLCKPv1": 8 magic bytes, u32 flags (bit 0 = functional phase), u32
/// reserved, the labelling and problem fingerprints, nextRow / frontier /
/// total as int64, and an FNV-1a checksum of the preceding 56 bytes.
constexpr unsigned char kCheckpointMagic[8] = {'L', 'C', 'L', 'C',
                                               'K', 'P', 'v', '1'};
constexpr std::size_t kCheckpointBytes = 64;

std::uint64_t checkpointChecksum(const unsigned char* buffer) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < kCheckpointBytes - 8; ++i) {
    hash ^= buffer[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

bool writeStreamCheckpoint(const std::string& path,
                           const StreamCheckpoint& checkpoint) {
  namespace fp = support::faultpoint;
  const auto fault = FAULT_POINT("stream.checkpoint_write");
  if (fault.action == fp::Action::kErrno) {
    errno = fault.errnoValue;
    return false;
  }
  if (fault.action == fp::Action::kDrop) return false;

  unsigned char buffer[kCheckpointBytes];
  std::memcpy(buffer, kCheckpointMagic, sizeof(kCheckpointMagic));
  put32le(buffer + 8, checkpoint.functionalPhase ? 1u : 0u);
  put32le(buffer + 12, 0);  // reserved
  put64le(buffer + 16, checkpoint.labellingFingerprint);
  put64le(buffer + 24, checkpoint.problemFingerprint);
  put64le(buffer + 32, static_cast<std::uint64_t>(checkpoint.nextRow));
  put64le(buffer + 40, static_cast<std::uint64_t>(checkpoint.frontier));
  put64le(buffer + 48, static_cast<std::uint64_t>(checkpoint.total));
  put64le(buffer + 56, checkpointChecksum(buffer));

  // tmp + fsync + rename: a crash leaves either the previous checkpoint or
  // the new one, never a torn record.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = std::fwrite(buffer, 1, kCheckpointBytes, file) ==
                kCheckpointBytes &&
            std::fflush(file) == 0;
#ifdef LCLGRID_HAVE_FSYNC
  if (ok) ok = ::fsync(::fileno(file)) == 0;
#endif
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<StreamCheckpoint> loadStreamCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  unsigned char buffer[kCheckpointBytes];
  const std::size_t got = std::fread(buffer, 1, kCheckpointBytes, file);
  std::fclose(file);
  if (got != kCheckpointBytes) return std::nullopt;
  if (std::memcmp(buffer, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return std::nullopt;
  }
  if (get64le(buffer + 56) != checkpointChecksum(buffer)) return std::nullopt;
  const std::uint32_t flags = get32le(reinterpret_cast<std::byte*>(buffer) + 8);
  StreamCheckpoint checkpoint;
  checkpoint.functionalPhase = (flags & 1u) != 0;
  checkpoint.labellingFingerprint = get64le(buffer + 16);
  checkpoint.problemFingerprint = get64le(buffer + 24);
  checkpoint.nextRow = static_cast<long long>(get64le(buffer + 32));
  checkpoint.frontier = static_cast<long long>(get64le(buffer + 40));
  checkpoint.total = static_cast<std::int64_t>(get64le(buffer + 48));
  if (checkpoint.nextRow < 0 || checkpoint.frontier < 0) return std::nullopt;
  return checkpoint;
}

void removeStreamCheckpoint(const std::string& path) {
  std::remove(path.c_str());
}

// --- slab machinery --------------------------------------------------------

namespace stream_verify_detail {

long long resolveWindowRows(int n, long long lines, long long requested) {
  if (requested > 0) return std::min(requested, lines);
  constexpr long long kTargetBytes = 8LL << 20;
  const long long rowBytes = static_cast<long long>(n) * sizeof(int);
  return std::clamp(kTargetBytes / rowBytes, 1LL, lines);
}

long long wrapWindowRows(int dims, int n) {
  long long rows = 1;
  for (int axis = 2; axis < dims; ++axis) rows *= n;
  return rows;
}

bool streamUsesBitslice(const StreamLabelling& file, const GridLcl& lcl) {
  return lcl.hasTable() && verifier_detail::bitsliceSelected(lcl, file.size());
}

bool streamUsesBitsliceD(const StreamLabelling& file, const GridLclD& lcl) {
  return lcl.hasTable() && lcl.dims() == 2 &&
         verifier_detail::bitsliceSelectedD(lcl, file.size());
}

void checkStream2D(const StreamLabelling& file, const GridLcl& lcl) {
  if (file.dims() != 2) {
    throw std::invalid_argument(
        "stream verify: file dims " + std::to_string(file.dims()) +
        " does not match a 2D problem");
  }
  if (file.sigma() != lcl.sigma()) {
    throw std::invalid_argument(
        "stream verify: file sigma " + std::to_string(file.sigma()) +
        " does not match problem sigma " + std::to_string(lcl.sigma()));
  }
  if (file.size() >
      static_cast<long long>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument(
        "stream verify: node count exceeds Torus2D indexing; use the "
        "d-dimensional entry points");
  }
}

void checkStreamD(const StreamLabelling& file, const GridLclD& lcl) {
  if (file.dims() != lcl.dims()) {
    throw std::invalid_argument(
        "stream verify: file dims " + std::to_string(file.dims()) +
        " does not match problem dims " + std::to_string(lcl.dims()));
  }
  if (file.sigma() != lcl.sigma()) {
    throw std::invalid_argument(
        "stream verify: file sigma " + std::to_string(file.sigma()) +
        " does not match problem sigma " + std::to_string(lcl.sigma()));
  }
}

void applyCheckpointConfig(StreamPass& pass, const StreamLabelling& file,
                           const StreamWindow& window,
                           std::uint64_t problemFingerprint) {
  if (window.checkpointPath.empty()) return;
  pass.checkpointPath = window.checkpointPath;
  pass.checkpointEverySlabs = std::max(1LL, window.checkpointEverySlabs);
  pass.labellingFingerprint = file.fingerprint();
  pass.problemFingerprint = problemFingerprint;
}

namespace {

/// Writes one checkpoint record for the pass; failures degrade to "no
/// checkpoint" (counted, never fatal). The stream.checkpoint fault point
/// fires only after a durable write, so abort@nth=K in a crash test kills
/// the pass with exactly K checkpoints on disk.
void checkpointSlab(const StreamPass& pass, bool functionalPhase,
                    long long nextRow, long long frontier,
                    std::int64_t total) {
  static const telemetry::Counter written =
      telemetry::counter("stream.checkpoints");
  static const telemetry::Counter failed =
      telemetry::counter("stream.checkpoint_failures");
  StreamCheckpoint checkpoint;
  checkpoint.functionalPhase = functionalPhase;
  checkpoint.labellingFingerprint = pass.labellingFingerprint;
  checkpoint.problemFingerprint = pass.problemFingerprint;
  checkpoint.nextRow = nextRow;
  checkpoint.frontier = frontier;
  checkpoint.total = total;
  if (writeStreamCheckpoint(pass.checkpointPath, checkpoint)) {
    written.increment();
    (void)FAULT_POINT("stream.checkpoint");
  } else {
    failed.increment();
  }
}

}  // namespace

std::int64_t runStreamPass(const StreamPass& pass, bool stopAtFirst) {
  const StreamLabelling& file = *pass.file;
  const long long lines = file.lines();
  bool table = pass.tablePath;
  // Checkpointing covers count passes only: verify early-exits, is cheap
  // to rerun, and its "first violation" short-circuit would make resumed
  // totals meaningless.
  const bool checkpointing = !stopAtFirst && !pass.checkpointPath.empty();
  // Streaming-tier attribution and the bounded-memory gauges: one call per
  // pass, slabs and dropped rows as they stream by, and the process RSS
  // high-water after the pass (the docs/perf.md bounded-window claim in
  // gauge form).
  verify_probes::recordCall(verify_probes::Tier::kStream, file.size());
  telemetry::ScopedSpan passSpan(
      verify_probes::spanName(verify_probes::Tier::kStream));
  static const telemetry::Counter slabCounter =
      telemetry::counter("stream.slabs");
  static const telemetry::Counter droppedRows =
      telemetry::counter("stream.rows_dropped");
  static const telemetry::Counter resumeCounter =
      telemetry::counter("stream.resumes");
  static const telemetry::Gauge rssGauge =
      telemetry::gauge("stream.peak_rss_kb");
  struct RssAtExit {
    const telemetry::Gauge& gauge;
    ~RssAtExit() { gauge.max(support::peakRssKb()); }
  } rssAtExit{rssGauge};

  // Resume: a fingerprint-matching checkpoint restores the cursor, the
  // validation frontier and the running total. Bit-identity needs no slab
  // alignment -- totals are exact int64 sums over disjoint row ranges, so
  // any partition of [0, lines) yields the identical count.
  long long startRow = 0;
  long long startFrontier = 0;
  std::int64_t startTotal = 0;
  bool resumeFunctional = false;
  if (checkpointing) {
    if (const auto loaded = loadStreamCheckpoint(pass.checkpointPath)) {
      if (loaded->labellingFingerprint == pass.labellingFingerprint &&
          loaded->problemFingerprint == pass.problemFingerprint &&
          loaded->nextRow <= lines && loaded->frontier <= lines &&
          (loaded->functionalPhase || table)) {
        startRow = loaded->nextRow;
        startFrontier = loaded->frontier;
        startTotal = loaded->total;
        resumeFunctional = loaded->functionalPhase;
        resumeCounter.increment();
      }
    }
  }

  std::int64_t total = 0;
  if (table && !resumeFunctional) {
    // The wrap stash is read by the first slab's cyclic neighbours before
    // the validation cursor reaches it, so it is validated up front (a
    // resumed pass revalidates it -- cheap, and robust to a file swapped
    // underneath the checkpoint).
    const long long tailBegin = std::max(0LL, lines - pass.wrapKeep);
    if (!pass.rowsInRange(tailBegin, lines)) table = false;
  }
  if (table && !resumeFunctional) {
    // Rows [0, frontier) -- plus the wrap stash above -- are known
    // in-range; the frontier stays one wrap window ahead of the kernel so
    // no table row is ever indexed by an unvalidated label.
    long long frontier = startFrontier;
    // Rows [0, wrapKeep) stay pinned.
    long long dropCursor = std::max(pass.wrapKeep, startRow);
    long long slabsSinceCheckpoint = 0;
    total = startTotal;
    for (long long begin = startRow; begin < lines; begin += pass.window) {
      const long long end = std::min(lines, begin + pass.window);
      const long long need = std::min(lines, end + pass.wrapKeep);
      if (frontier < need) {
        if (!pass.rowsInRange(frontier, need)) {
          table = false;
          break;
        }
        frontier = need;
      }
      {
        slabCounter.increment();
        telemetry::ScopedSpan slabSpan("stream/slab");
        (void)FAULT_POINT("stream.slab");
        total += pass.kernelRows(begin, end, stopAtFirst);
      }
      if (stopAtFirst && total > 0) return total;
      if (pass.dropBehind) {
        const long long dropEnd = end - pass.wrapKeep;
        if (dropEnd > dropCursor) {
          file.dropRows(dropCursor, dropEnd);
          droppedRows.add(dropEnd - dropCursor);
          dropCursor = dropEnd;
        }
      }
      if (checkpointing && ++slabsSinceCheckpoint >= pass.checkpointEverySlabs) {
        slabsSinceCheckpoint = 0;
        checkpointSlab(pass, /*functionalPhase=*/false, end, frontier, total);
      }
    }
    if (table) {
      if (checkpointing) removeStreamCheckpoint(pass.checkpointPath);
      return total;
    }
  }
  // Functional fallback: an uncompiled problem, or an out-of-range label
  // surfaced mid-stream -- the whole pass restarts on the predicate loop,
  // mirroring the in-core engine's whole-labelling tier choice (dropped
  // pages are simply paged back in). A table-phase crash between the
  // fallback and the first functional checkpoint resumes into the table
  // phase, rediscovers the out-of-range label and falls back again --
  // always to the same functional-from-zero restart.
  const long long functionalStart = resumeFunctional ? startRow : 0;
  total = resumeFunctional ? startTotal : 0;
  long long dropCursor = std::max(pass.wrapKeep, functionalStart);
  long long slabsSinceCheckpoint = 0;
  for (long long begin = functionalStart; begin < lines;
       begin += pass.window) {
    const long long end = std::min(lines, begin + pass.window);
    {
      slabCounter.increment();
      telemetry::ScopedSpan slabSpan("stream/slab");
      (void)FAULT_POINT("stream.slab");
      total += pass.functionalRows(begin, end, stopAtFirst);
    }
    if (stopAtFirst && total > 0) return total;
    if (pass.dropBehind) {
      const long long dropEnd = end - pass.wrapKeep;
      if (dropEnd > dropCursor) {
        file.dropRows(dropCursor, dropEnd);
        droppedRows.add(dropEnd - dropCursor);
        dropCursor = dropEnd;
      }
    }
    if (checkpointing && ++slabsSinceCheckpoint >= pass.checkpointEverySlabs) {
      slabsSinceCheckpoint = 0;
      checkpointSlab(pass, /*functionalPhase=*/true, end, /*frontier=*/0,
                     total);
    }
  }
  if (checkpointing) removeStreamCheckpoint(pass.checkpointPath);
  return total;
}

}  // namespace stream_verify_detail

// --- serial entry points ---------------------------------------------------

namespace {

using stream_verify_detail::checkStream2D;
using stream_verify_detail::checkStreamD;
using stream_verify_detail::resolveWindowRows;
using stream_verify_detail::runStreamPass;
using stream_verify_detail::StreamPass;
using stream_verify_detail::wrapWindowRows;

std::int64_t serialStream2D(const StreamLabelling& file, const GridLcl& lcl,
                            const StreamWindow& window, bool stopAtFirst) {
  checkStream2D(file, lcl);
  const int n = file.n();
  const long long lines = file.lines();
  const int* labels = file.labels();
  const std::span<const int> all(labels, static_cast<std::size_t>(file.size()));
  const Torus2D torus(n);
  StreamPass pass;
  pass.file = &file;
  pass.window = resolveWindowRows(n, lines, window.rows);
  pass.wrapKeep = wrapWindowRows(file.dims(), n);
  pass.dropBehind = window.dropBehind;
  pass.tablePath = lcl.hasTable();
  stream_verify_detail::applyCheckpointConfig(
      pass, file, window, lcl.hasTable() ? lcl.table().fingerprint() : 0);
  const bool sliced = stream_verify_detail::streamUsesBitslice(file, lcl);
  if (pass.tablePath) {
    pass.rowsInRange = [&lcl, all, n](long long begin, long long end) {
      return verifier_detail::allLabelsInRange(
          lcl.sigma(),
          all.subspan(static_cast<std::size_t>(begin * n),
                      static_cast<std::size_t>((end - begin) * n)));
    };
    pass.kernelRows = [&lcl, labels, n, lines, sliced](
                          long long begin, long long end, bool stop) {
      if (sliced) {
        return verifier_detail::bitsliceViolationRows(
            lcl.table(), n, static_cast<int>(lines), labels,
            static_cast<int>(begin), static_cast<int>(end), stop);
      }
      return verifier_detail::tableViolationRows(lcl.table(), n, labels,
                                                 static_cast<int>(begin),
                                                 static_cast<int>(end), stop);
    };
  }
  pass.functionalRows = [&torus, &lcl, all, n](long long begin, long long end,
                                               bool stop) {
    return verifier_detail::functionalViolationRange(
        torus, lcl, all, static_cast<int>(begin * n),
        static_cast<int>(end * n), stop);
  };
  return runStreamPass(pass, stopAtFirst);
}

std::int64_t serialStreamD(const StreamLabelling& file, const GridLclD& lcl,
                           const StreamWindow& window, bool stopAtFirst) {
  checkStreamD(file, lcl);
  const int n = file.n();
  const long long lines = file.lines();
  const int* labels = file.labels();
  const std::span<const int> all(labels, static_cast<std::size_t>(file.size()));
  const TorusD torus(file.dims(), n);
  StreamPass pass;
  pass.file = &file;
  pass.window = resolveWindowRows(n, lines, window.rows);
  pass.wrapKeep = wrapWindowRows(file.dims(), n);
  pass.dropBehind = window.dropBehind;
  pass.tablePath = lcl.hasTable();
  stream_verify_detail::applyCheckpointConfig(
      pass, file, window, lcl.hasTable() ? lcl.table().fingerprint() : 0);
  const bool sliced = stream_verify_detail::streamUsesBitsliceD(file, lcl);
  // Unused by the d = 2 delegated row kernel -- the only bit-sliced tier
  // the streaming pass selects.
  const LabelPlanes noPlanes;
  if (pass.tablePath) {
    pass.rowsInRange = [&lcl, all, n](long long begin, long long end) {
      return verifier_detail::allLabelsInRange(
          lcl.sigma(),
          all.subspan(static_cast<std::size_t>(begin * n),
                      static_cast<std::size_t>((end - begin) * n)));
    };
    pass.kernelRows = [&lcl, &torus, &noPlanes, labels, sliced](
                          long long begin, long long end, bool stop) {
      if (sliced) {
        return verifier_detail::bitsliceViolationLinesD(
            lcl.table(), torus, noPlanes, labels, begin, end, stop);
      }
      return verifier_detail::tableViolationLinesD(lcl.table(), torus, labels,
                                                   begin, end, stop);
    };
  }
  pass.functionalRows = [&torus, &lcl, all, n](long long begin, long long end,
                                               bool stop) {
    return verifier_detail::functionalViolationRangeD(
        torus, lcl, all, begin * n, end * n, stop);
  };
  return runStreamPass(pass, stopAtFirst);
}

}  // namespace

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLcl& lcl,
                                   const StreamWindow& window) {
  return serialStream2D(file, lcl, window, /*stopAtFirst=*/false);
}

bool streamVerify(const StreamLabelling& file, const GridLcl& lcl,
                  const StreamWindow& window) {
  return serialStream2D(file, lcl, window, /*stopAtFirst=*/true) == 0;
}

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLclD& lcl,
                                   const StreamWindow& window) {
  return serialStreamD(file, lcl, window, /*stopAtFirst=*/false);
}

bool streamVerify(const StreamLabelling& file, const GridLclD& lcl,
                  const StreamWindow& window) {
  return serialStreamD(file, lcl, window, /*stopAtFirst=*/true) == 0;
}

}  // namespace lclgrid
