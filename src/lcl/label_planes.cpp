#include "lcl/label_planes.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#if defined(__SSE2__)
#include <immintrin.h>
#if defined(__GNUC__) || defined(__clang__)
#define LCLGRID_BITSLICE_AVX2 1
#if defined(__x86_64__)
#define LCLGRID_BITSLICE_AVX512 1
#endif
#endif
#endif

namespace lclgrid {

namespace bitslice {

namespace {

// -1 = not yet read from the environment; 0/1 afterwards (or after an
// explicit setEnabled override).
std::atomic<int> gEnabled{-1};

int readEnv() {
  const char* value = std::getenv("LCLGRID_BITSLICE");
  return (value != nullptr && value[0] == '0' && value[1] == '\0') ? 0 : 1;
}

// The SIMD cap, same publication scheme: -1 = not yet read from
// LCLGRID_SIMD; 0/1/2 afterwards.
std::atomic<int> gSimdCap{-1};

int readSimdEnv() {
  const char* value = std::getenv("LCLGRID_SIMD");
  if (value != nullptr && value[0] != '\0' && value[1] == '\0') {
    if (value[0] == '0') return 0;
    if (value[0] == '1') return 1;
  }
  return 2;
}

#if defined(LCLGRID_BITSLICE_AVX2)

/// AVX2 clone of transposeRow's whole aligned body (one dispatched call
/// per row so the accumulators stay in registers): 32 labels per step,
/// narrowed with the 256-bit packs -- which interleave their 128-bit
/// lanes, so one dword permute restores label order -- then each plane
/// harvested with a byte movemask. Handles k in [0, n & ~63); the caller
/// finishes the last partial word.
#if !defined(__AVX2__)
__attribute__((target("avx2")))
#endif
void transposeRowAvx2(const int* labels, int n, int planes,
                      std::uint64_t* out, std::size_t W) {
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  for (std::size_t w = 0; (w + 1) * 64 <= static_cast<std::size_t>(n); ++w) {
    std::uint64_t packed[8] = {};
    for (int k = 0; k < 64; k += 32) {
      const int* p = labels + w * 64 + k;
      const __m256i ab = _mm256_packs_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8)));
      const __m256i cd = _mm256_packs_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 16)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 24)));
      const __m256i bytes =
          _mm256_permutevar8x32_epi32(_mm256_packus_epi16(ab, cd), order);
      for (int b = 0; b < planes; ++b) {
        const std::uint32_t bits = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi64(bytes, 7 - b)));
        packed[b] |= static_cast<std::uint64_t>(bits) << k;
      }
    }
    for (int b = 0; b < planes; ++b) {
      out[static_cast<std::size_t>(b) * W + w] = packed[b];
    }
  }
}

bool avx2Supported() {
#if defined(__AVX2__)
  return true;
#else
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#endif
}

#endif  // LCLGRID_BITSLICE_AVX2

#if defined(LCLGRID_BITSLICE_AVX512)

bool avx512Supported() {
  // The lumped subsets the verifier's AVX-512 kernels use: foundation +
  // byte/word ops + the byte permute of the nibble LUT + vector popcount.
  static const bool supported =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vbmi") &&
      __builtin_cpu_supports("avx512vpopcntdq");
  return supported;
}

#endif  // LCLGRID_BITSLICE_AVX512

}  // namespace

bool enabled() {
  int state = gEnabled.load(std::memory_order_relaxed);
  if (state < 0) {
    // First reader publishes the environment value -- unless a concurrent
    // setEnabled() got there first, in which case its override wins.
    int expected = -1;
    const int fromEnv = readEnv();
    state = gEnabled.compare_exchange_strong(expected, fromEnv,
                                             std::memory_order_relaxed)
                ? fromEnv
                : expected;
  }
  return state != 0;
}

void setEnabled(bool value) {
  gEnabled.store(value ? 1 : 0, std::memory_order_relaxed);
}

bool avx2Available() {
#if defined(LCLGRID_BITSLICE_AVX2)
  return avx2Supported();
#else
  return false;
#endif
}

bool avx512Available() {
#if defined(LCLGRID_BITSLICE_AVX512)
  return avx512Supported();
#else
  return false;
#endif
}

SimdTier simdTier() {
  int cap = gSimdCap.load(std::memory_order_relaxed);
  if (cap < 0) {
    int expected = -1;
    const int fromEnv = readSimdEnv();
    cap = gSimdCap.compare_exchange_strong(expected, fromEnv,
                                           std::memory_order_relaxed)
              ? fromEnv
              : expected;
  }
  const int available = avx512Available() ? 2 : (avx2Available() ? 1 : 0);
  return static_cast<SimdTier>(std::min(cap, available));
}

void setSimdTier(SimdTier cap) {
  gSimdCap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

int planeCount(int sigma) {
  return std::max(
      1, static_cast<int>(std::bit_width(static_cast<unsigned>(sigma - 1))));
}

void transposeRow(const int* labels, int n, int planes, std::uint64_t* out) {
  const std::size_t W = wordsPerRow(n);
  std::size_t wBegin = 0;
#if defined(LCLGRID_BITSLICE_AVX2)
  if (simdTier() >= SimdTier::kAvx2) {
    transposeRowAvx2(labels, n, planes, out, W);
    wBegin = static_cast<std::size_t>(n) / 64;  // full words done
    if (wBegin == W) return;
  }
#endif
  for (std::size_t w = wBegin; w < W; ++w) {
    const int base = static_cast<int>(w) * 64;
    const int m = std::min(64, n - base);
    std::uint64_t packed[8] = {};
    int k = 0;
#if defined(__SSE2__)
    // 16 labels per step: narrow int32 -> uint8 with two pack stages, then
    // harvest bit b of every byte by shifting it into the sign position
    // and taking the byte movemask -- 16 plane bits per op.
    for (; k + 16 <= m; k += 16) {
      const int* p = labels + base + k;
      const __m128i lo = _mm_packs_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4)));
      const __m128i hi = _mm_packs_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 8)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 12)));
      const __m128i bytes = _mm_packus_epi16(lo, hi);
      for (int b = 0; b < planes; ++b) {
        const unsigned bits = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_slli_epi64(bytes, 7 - b)));
        packed[b] |= static_cast<std::uint64_t>(bits) << k;
      }
    }
#else
    // Portable path: stage 8 labels as the bytes of one uint64_t, then
    // gather bit b of each byte with the multiply trick -- the magic
    // constant places bit 8j at product bit 56+j with no carry collisions,
    // so 8 label bits cost one shift/and/mul/shift per plane.
    for (; k + 8 <= m; k += 8) {
      std::uint64_t w8 = 0;
      for (int j = 0; j < 8; ++j) {
        w8 |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(labels[base + k + j]))
              << (8 * j);
      }
      for (int b = 0; b < planes; ++b) {
        const std::uint64_t bits =
            (((w8 >> b) & 0x0101010101010101ULL) * 0x0102040810204080ULL) >>
            56;
        packed[b] |= bits << k;
      }
    }
#endif
    for (; k < m; ++k) {
      const int label = labels[base + k];
      for (int b = 0; b < planes; ++b) {
        packed[b] |= static_cast<std::uint64_t>((label >> b) & 1) << k;
      }
    }
    for (int b = 0; b < planes; ++b) {
      out[static_cast<std::size_t>(b) * W + w] = packed[b];
    }
  }
}

void untransposeRow(const std::uint64_t* planes, int n, int planeCount,
                    int* labels) {
  const std::size_t W = wordsPerRow(n);
  for (int x = 0; x < n; ++x) {
    int label = 0;
    for (int b = 0; b < planeCount; ++b) {
      label |= static_cast<int>(
                   (planes[static_cast<std::size_t>(b) * W +
                           static_cast<std::size_t>(x >> 6)] >>
                    (x & 63)) &
                   1u)
               << b;
    }
    labels[x] = label;
  }
}

void shiftUpCyclic(const std::uint64_t* src, std::uint64_t* dst, int n) {
  const std::size_t W = wordsPerRow(n);
  for (std::size_t w = 0; w + 1 < W; ++w) {
    dst[w] = (src[w] >> 1) | (src[w + 1] << 63);
  }
  dst[W - 1] = src[W - 1] >> 1;
  const int top = n - 1;
  dst[top >> 6] |= (src[0] & 1u) << (top & 63);
}

void shiftDownCyclic(const std::uint64_t* src, std::uint64_t* dst, int n) {
  const std::size_t W = wordsPerRow(n);
  for (std::size_t w = W; w-- > 1;) {
    dst[w] = (src[w] << 1) | (src[w - 1] >> 63);
  }
  dst[0] = src[0] << 1;
  const int top = n - 1;
  dst[0] |= (src[top >> 6] >> (top & 63)) & 1u;
  dst[W - 1] &= rowTailMask(n);
}

void PairNetwork::eval(const std::uint64_t* lo, const std::uint64_t* hi,
                       std::size_t words, std::uint64_t* out) const {
  if (notEqual) {
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t diff = lo[w] ^ hi[w];
      for (int b = 1; b < planes; ++b) {
        diff |= lo[static_cast<std::size_t>(b) * words + w] ^
                hi[static_cast<std::size_t>(b) * words + w];
      }
      out[w] = diff;
    }
    return;
  }
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t acc = 0;
    for (const Term& term : terms) {
      std::uint64_t t = ~std::uint64_t{0};
      for (int b = 0; b < planes; ++b) {
        t &= lo[static_cast<std::size_t>(b) * words + w] ^ term.loXor[b];
      }
      for (int b = 0; b < planes; ++b) {
        t &= hi[static_cast<std::size_t>(b) * words + w] ^ term.hiXor[b];
      }
      acc |= t;
    }
    out[w] = complement ? ~acc : acc;
  }
}

PairNetwork compilePairNetwork(int sigma,
                               const std::function<bool(int, int)>& ok) {
  if (sigma < 1 || sigma > 8) {
    throw std::invalid_argument("compilePairNetwork: sigma out of [1, 8]");
  }
  std::vector<std::pair<int, int>> allowed;
  std::vector<std::pair<int, int>> forbidden;
  for (int lo = 0; lo < sigma; ++lo) {
    for (int hi = 0; hi < sigma; ++hi) {
      (ok(lo, hi) ? allowed : forbidden).emplace_back(lo, hi);
    }
  }
  PairNetwork net;
  net.planes = planeCount(sigma);
  net.notEqual = true;
  for (int lo = 0; lo < sigma && net.notEqual; ++lo) {
    for (int hi = 0; hi < sigma && net.notEqual; ++hi) {
      net.notEqual = ok(lo, hi) == (lo != hi);
    }
  }
  net.complement = forbidden.size() < allowed.size();
  const auto& side = net.complement ? forbidden : allowed;
  net.terms.reserve(side.size());
  for (const auto& [lo, hi] : side) {
    PairNetwork::Term term;
    for (int b = 0; b < net.planes; ++b) {
      term.loXor[b] = ((lo >> b) & 1) ? 0 : ~std::uint64_t{0};
      term.hiXor[b] = ((hi >> b) & 1) ? 0 : ~std::uint64_t{0};
    }
    net.terms.push_back(term);
  }
  return net;
}

NibbleLut compileNibbleLut(
    int sigma,
    const std::function<bool(int c, int n, int e, int s, int w)>& ok) {
  if (sigma < 1 || sigma > 4) {
    throw std::invalid_argument("compileNibbleLut: sigma out of [1, 4]");
  }
  NibbleLut lut{};
  // Key layout matches the packed-label kernel: c | n<<2 | e<<4 | s<<6,
  // with the west label selecting the bit. Tuples with a label >= sigma
  // never reach the kernel (the table path requires in-range labels), so
  // their bits stay 0.
  for (int w = 0; w < sigma; ++w) {
    for (int s = 0; s < sigma; ++s) {
      for (int e = 0; e < sigma; ++e) {
        for (int n = 0; n < sigma; ++n) {
          for (int c = 0; c < sigma; ++c) {
            if (!ok(c, n, e, s, w)) continue;
            const int key = c | (n << 2) | (e << 4) | (s << 6);
            lut.byWest[static_cast<std::size_t>(key)] |=
                static_cast<std::uint8_t>(1u << w);
          }
        }
      }
    }
  }
  return lut;
}

}  // namespace bitslice

LabelPlanes::LabelPlanes(int n, long long rows, int planes)
    : n_(n), rows_(rows), planes_(planes), words_(bitslice::wordsPerRow(n)) {
  if (n < 1 || rows < 0 || planes < 1 || planes > 8) {
    throw std::invalid_argument("LabelPlanes: bad shape");
  }
  data_.assign(static_cast<std::size_t>(rows) * planes_ * words_, 0);
}

void LabelPlanes::setRows(std::span<const int> labels, long long rowBegin,
                          long long rowEnd) {
  if (static_cast<long long>(labels.size()) !=
      rows_ * static_cast<long long>(n_)) {
    throw std::invalid_argument("LabelPlanes::setRows: labelling size");
  }
  for (long long r = rowBegin; r < rowEnd; ++r) {
    bitslice::transposeRow(
        labels.data() + static_cast<std::size_t>(r) * n_, n_, planes_,
        row(r));
  }
}

void LabelPlanes::toLabels(std::span<int> out) const {
  if (static_cast<long long>(out.size()) !=
      rows_ * static_cast<long long>(n_)) {
    throw std::invalid_argument("LabelPlanes::toLabels: labelling size");
  }
  for (long long r = 0; r < rows_; ++r) {
    bitslice::untransposeRow(row(r), n_, planes_,
                             out.data() + static_cast<std::size_t>(r) * n_);
  }
}

}  // namespace lclgrid
