// Compiled constraint tables for radius-1 grid LCLs.
//
// A radius-1 node constraint over alphabet [sigma] is a finite relation on
// sigma^5 tuples (c, n, e, s, w), so instead of re-evaluating a
// std::function per node the whole relation is compiled once into a dense
// truth table: one uint64_t "row" per assignment of the *dependent*
// neighbour positions (DepBit-irrelevant positions are squeezed out via
// zero strides), with bit c of a row set iff centre label c is allowed
// under that neighbourhood. A feasibility check is then a single indexed
// load plus a bit test, and CNF generators / combinators iterate or
// compose rows directly instead of quantifying sigma^5 through a closure.
//
// Derived data computed at compile time:
//  * per-direction pair projections hPairs/vPairs and the
//    edge-decomposability verdict (Section 7's neighbourhood-graph split),
//  * the trivial (constant-labelling) label if one exists,
//  * per-neighbourhood candidate masks -- the rows themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "lcl/label_planes.hpp"

namespace lclgrid {

// Same bit meanings as DepBit in grid_lcl.hpp; redeclared here to keep this
// header free-standing (grid_lcl.hpp includes us, not vice versa).
inline constexpr std::uint8_t kTableDepN = 1 << 0;
inline constexpr std::uint8_t kTableDepE = 1 << 1;
inline constexpr std::uint8_t kTableDepS = 1 << 2;
inline constexpr std::uint8_t kTableDepW = 1 << 3;

class LclTable {
 public:
  /// Centre labels are bits of a uint64_t row, so alphabets are capped.
  static constexpr int kMaxSigma = 64;
  /// Row-count cap (64 MiB of rows) guarding degenerate dense compiles.
  static constexpr std::size_t kMaxRows = std::size_t{1} << 23;

  using Predicate = std::function<bool(int c, int n, int e, int s, int w)>;

  /// True iff a (sigma, deps) relation fits the compiled representation.
  static bool compilable(int sigma, std::uint8_t deps);

  /// Evaluates `ok` once per dependent tuple and packs the truth table.
  static LclTable compile(int sigma, std::uint8_t deps, const Predicate& ok);

  /// Block-diagonal composition: labels [0, p.sigma()) behave as p, labels
  /// [p.sigma(), p.sigma()+q.sigma()) as q, and mixed-family
  /// neighbourhoods allow no centre label at all (the Section 6 disjoint
  /// union). Requires p.sigma()+q.sigma() <= kMaxSigma.
  static LclTable disjointUnion(const LclTable& p, const LclTable& q);

  /// Alphabet pushforward: `toOld[fresh]` is the p-label that the fresh
  /// label stands for. Covers relabel (bijection), orientation flips and
  /// label restriction; rows are gathered and their bits permuted, no
  /// predicate involved.
  static LclTable remap(const LclTable& p, std::span<const int> toOld);

  int sigma() const { return sigma_; }
  std::uint8_t deps() const { return deps_; }
  /// Low-sigma_ bits set: the "every centre label allowed" row.
  std::uint64_t fullRow() const { return fullRow_; }

  /// Row index of a neighbourhood; irrelevant positions have stride 0 and
  /// are ignored. All arguments must lie in [0, sigma).
  std::size_t rowIndex(int n, int e, int s, int w) const {
    return static_cast<std::size_t>(n) * strideN_ +
           static_cast<std::size_t>(e) * strideE_ +
           static_cast<std::size_t>(s) * strideS_ +
           static_cast<std::size_t>(w) * strideW_;
  }

  /// Bitmask of allowed centre labels for a neighbourhood (the hot path).
  std::uint64_t centreMask(int n, int e, int s, int w) const {
    return rows_[rowIndex(n, e, s, w)];
  }

  bool allows(int c, int n, int e, int s, int w) const {
    return (centreMask(n, e, s, w) >> c) & 1u;
  }

  std::size_t rowCount() const { return rows_.size(); }

  /// Raw packed rows and per-position strides. Exposed for the verifier
  /// kernels and the d-dimensional wrapper (LclTableD delegates its d=2
  /// storage to an LclTable and views these rows directly, so the 2D fast
  /// path is shared bit-for-bit). Not part of the stable API.
  const std::uint64_t* rowData() const { return rows_.data(); }
  std::size_t strideN() const { return strideN_; }
  std::size_t strideE() const { return strideE_; }
  std::size_t strideS() const { return strideS_; }
  std::size_t strideW() const { return strideW_; }

  /// Visits every forbidden tuple once, with DepBit-irrelevant neighbour
  /// positions pinned to 0 (mirroring the CNF generators' convention).
  /// Fully-allowed rows are skipped a word at a time.
  template <typename F>
  void forEachForbidden(F&& f) const {
    visitRows([&](std::uint64_t row, int n, int e, int s, int w) {
      if (row == fullRow_) return;
      for (int c = 0; c < sigma_; ++c) {
        if (!((row >> c) & 1u)) f(c, n, e, s, w);
      }
    });
  }

  /// Visits every allowed tuple once (irrelevant positions pinned to 0).
  template <typename F>
  void forEachAllowed(F&& f) const {
    visitRows([&](std::uint64_t row, int n, int e, int s, int w) {
      if (row == 0) return;
      for (int c = 0; c < sigma_; ++c) {
        if ((row >> c) & 1u) f(c, n, e, s, w);
      }
    });
  }

  /// Number of forbidden tuples over the dependent positions only.
  long long forbiddenRowCount() const;

  /// The label of a feasible constant labelling, or -1 (Section 7's O(1)
  /// characterisation on tori).
  int trivialLabel() const { return trivialLabel_; }

  /// Content fingerprint: FNV-1a over (sigma, deps, rows). Tables with the
  /// same alphabet, dependency mask and packed rows hash equal no matter
  /// which construction path built them (predicate compile, disjointUnion,
  /// remap). Note the deps mask is part of the content: the same relation
  /// compiled under a pruned mask vs. a full mask stores different rows
  /// and fingerprints differently. The engine's FamilySweep keys its
  /// oracle result cache on this, so a family containing the same
  /// (sigma, deps, rows) table twice runs the classification once.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Exact (sigma, deps, rows) equality -- what fingerprint() approximates.
  /// Cache users compare this on fingerprint match so a 64-bit collision
  /// can never alias two different relations.
  bool sameContent(const LclTable& other) const {
    return sigma_ == other.sigma_ && deps_ == other.deps_ &&
           rows_ == other.rows_;
  }

  /// The bit-sliced evaluation plan, synthesised at compile time, or
  /// nullptr when the relation fits neither plan shape (see label_planes
  /// .hpp): pair networks over bit-planes when the table is
  /// edge-decomposable with sigma <= 8 and small enough pair sets, a
  /// nibble-indexed LUT when sigma <= 4. The verifier's kernel selection
  /// reads this; derived data, not part of the relation's content (it does
  /// not enter fingerprint()).
  const bitslice::BitslicePlan* bitslicePlan() const {
    return bitslicePlan_.get();
  }

  /// True iff the relation factorises into horizontal and vertical pair
  /// constraints: ok(c,n,e,s,w) == H(w,c) && H(c,e) && V(s,c) && V(c,n).
  bool edgeDecomposable() const { return edgeDecomposable_; }
  /// Pair projections (maximal candidates; exact iff edgeDecomposable()).
  bool horizontalOk(int west, int east) const {
    return hPairs_[static_cast<std::size_t>(west) * sigma_ + east] != 0;
  }
  bool verticalOk(int south, int north) const {
    return vPairs_[static_cast<std::size_t>(south) * sigma_ + north] != 0;
  }

 private:
  LclTable(int sigma, std::uint8_t deps);

  bool useN() const { return deps_ & kTableDepN; }
  bool useE() const { return deps_ & kTableDepE; }
  bool useS() const { return deps_ & kTableDepS; }
  bool useW() const { return deps_ & kTableDepW; }

  /// Calls f(row, n, e, s, w) for every stored row, in storage order, with
  /// irrelevant positions pinned to 0.
  template <typename F>
  void visitRows(F&& f) const {
    const int dN = useN() ? sigma_ : 1;
    const int dE = useE() ? sigma_ : 1;
    const int dS = useS() ? sigma_ : 1;
    const int dW = useW() ? sigma_ : 1;
    std::size_t index = 0;
    for (int n = 0; n < dN; ++n) {
      for (int e = 0; e < dE; ++e) {
        for (int s = 0; s < dS; ++s) {
          for (int w = 0; w < dW; ++w) {
            f(rows_[index++], n, e, s, w);
          }
        }
      }
    }
  }

  /// Computes projections, decomposability and the trivial label from the
  /// packed rows (called at the end of every construction path).
  void finalise();

  int sigma_;
  std::uint8_t deps_;
  std::uint64_t fullRow_ = 0;
  std::size_t strideN_ = 0, strideE_ = 0, strideS_ = 0, strideW_ = 0;
  std::vector<std::uint64_t> rows_;

  // Derived at compile time.
  std::vector<std::uint8_t> hPairs_;  // sigma x sigma, [west * sigma + east]
  std::vector<std::uint8_t> vPairs_;  // sigma x sigma, [south * sigma + north]
  std::shared_ptr<const bitslice::BitslicePlan> bitslicePlan_;
  bool edgeDecomposable_ = false;
  int trivialLabel_ = -1;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace lclgrid
