// Serial verification on d-dimensional tori: the TorusD overloads declared
// in lcl/verifier.hpp. The compiled path is a flat line-pointer kernel --
// nodes are walked one axis-0 line (n contiguous labels) at a time, with
// one neighbour line pointer per outer axis recomputed per line, so the
// inner loop is 2d loads, one table-row load and a bit test per node, no
// TorusD::step and no per-node allocation. d = 2 routes through the proven
// 2D row kernel on the delegated LclTable (one 2D code path in the
// library). The threaded overloads shard the same line kernel; see
// src/engine/parallel_verifier.cpp.
#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "lcl/verifier.hpp"
#include "lcl/verify_probes.hpp"

namespace lclgrid {

namespace {

/// Table-driven kernel over axis-0 lines [lineBegin, lineEnd) of one
/// labelling. Requires every label in [0, sigma).
template <bool StopAtFirst>
std::int64_t tableViolationLines(const LclTableD& table, const TorusD& torus,
                                 const int* labels, long long lineBegin,
                                 long long lineEnd) {
  const int n = torus.n();
  if (const LclTable* table2d = table.as2d()) {
    return verifier_detail::tableViolationRows(*table2d, n, labels,
                                               static_cast<int>(lineBegin),
                                               static_cast<int>(lineEnd),
                                               StopAtFirst);
  }
  const int dims = torus.dims();
  const std::size_t* strides = table.slotStrides();
  const std::uint64_t* rows = table.rowData();
  // lineStride[a] = n^(a-1): the distance in line space of a +1 step along
  // outer axis a (axis 1 is the fastest-varying line coordinate).
  std::vector<long long> lineStride(static_cast<std::size_t>(dims), 0);
  long long stride = 1;
  for (int a = 1; a < dims; ++a) {
    lineStride[static_cast<std::size_t>(a)] = stride;
    stride *= n;
  }
  std::vector<const int*> posLine(static_cast<std::size_t>(dims), nullptr);
  std::vector<const int*> negLine(static_cast<std::size_t>(dims), nullptr);
  std::int64_t bad = 0;
  for (long long line = lineBegin; line < lineEnd; ++line) {
    const int* row = labels + line * n;
    long long rem = line;
    for (int a = 1; a < dims; ++a) {
      const long long ls = lineStride[static_cast<std::size_t>(a)];
      const int coord = static_cast<int>(rem % n);
      rem /= n;
      posLine[static_cast<std::size_t>(a)] =
          labels + (line + (coord + 1 == n ? ls * (1 - n) : ls)) * n;
      negLine[static_cast<std::size_t>(a)] =
          labels + (line + (coord == 0 ? ls * (n - 1) : -ls)) * n;
    }
    for (int x = 0; x < n; ++x) {
      std::size_t index =
          strides[0] * static_cast<std::size_t>(row[x + 1 == n ? 0 : x + 1]) +
          strides[1] * static_cast<std::size_t>(row[x == 0 ? n - 1 : x - 1]);
      for (int a = 1; a < dims; ++a) {
        index +=
            strides[2 * a] *
                static_cast<std::size_t>(posLine[static_cast<std::size_t>(a)][x]) +
            strides[2 * a + 1] *
                static_cast<std::size_t>(negLine[static_cast<std::size_t>(a)][x]);
      }
      if (!((rows[index] >> row[x]) & 1u)) {
        if constexpr (StopAtFirst) return 1;
        ++bad;
      }
    }
  }
  return bad;
}

/// Bit-sliced kernel over axis-0 lines [lineBegin, lineEnd) of a staged
/// LabelPlanes buffer (one plane set per line, transposed up front -- the
/// engine shards the staging pass separately). Per line: the axis-0 pair
/// network runs on the line's planes against their one-bit cyclic shift
/// (both directions via one extra stream shift), and each outer axis's
/// network runs against the pos/neg neighbour lines' planes, ANDed into
/// one ok-word -- 2d pair checks for 64 nodes per word sweep.
template <bool StopAtFirst>
std::int64_t planesLineViolations(const bitslice::BitslicePlanD& plan,
                                  const TorusD& torus,
                                  const LabelPlanes& planes,
                                  long long lineBegin, long long lineEnd) {
  const int n = torus.n();
  const int dims = torus.dims();
  const int B = plan.planes;
  const std::size_t W = planes.wordsPerRow();
  const std::uint64_t tail = bitslice::rowTailMask(n);
  std::vector<long long> lineStride(static_cast<std::size_t>(dims), 0);
  long long stride = 1;
  for (int a = 1; a < dims; ++a) {
    lineStride[static_cast<std::size_t>(a)] = stride;
    stride *= n;
  }
  std::vector<std::uint64_t> store((static_cast<std::size_t>(B) + 3) * W);
  std::uint64_t* shiftP = store.data();  // east-shifted planes of the line
  std::uint64_t* strmA = shiftP + static_cast<std::size_t>(B) * W;
  std::uint64_t* strmB = strmA + W;
  std::uint64_t* okAcc = strmB + W;
  std::int64_t bad = 0;
  for (long long line = lineBegin; line < lineEnd; ++line) {
    const std::uint64_t* curP = planes.row(line);
    for (int b = 0; b < B; ++b) {
      bitslice::shiftUpCyclic(curP + static_cast<std::size_t>(b) * W,
                              shiftP + static_cast<std::size_t>(b) * W, n);
    }
    plan.axes[0].eval(curP, shiftP, W, strmA);  // bit x = P0(c[x], c[x+1])
    bitslice::shiftDownCyclic(strmA, strmB, n);  // bit x = P0(c[x-1], c[x])
    for (std::size_t w = 0; w < W; ++w) okAcc[w] = strmA[w] & strmB[w];
    long long rem = line;
    for (int a = 1; a < dims; ++a) {
      const long long ls = lineStride[static_cast<std::size_t>(a)];
      const int coord = static_cast<int>(rem % n);
      rem /= n;
      const long long pos = line + (coord + 1 == n ? ls * (1 - n) : ls);
      const long long neg = line + (coord == 0 ? ls * (n - 1) : -ls);
      plan.axes[static_cast<std::size_t>(a)].eval(curP, planes.row(pos), W,
                                                  strmA);
      for (std::size_t w = 0; w < W; ++w) okAcc[w] &= strmA[w];
      plan.axes[static_cast<std::size_t>(a)].eval(planes.row(neg), curP, W,
                                                  strmA);
      for (std::size_t w = 0; w < W; ++w) okAcc[w] &= strmA[w];
    }
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t violated =
          ~okAcc[w] & (w + 1 == W ? tail : ~std::uint64_t{0});
      if (violated != 0) {
        if constexpr (StopAtFirst) return 1;
        bad += std::popcount(violated);
      }
    }
  }
  return bad;
}

/// Fallback for uncompiled problems or out-of-alphabet labels, over nodes
/// [vBegin, vEnd): TorusD::step per neighbour, GridLclD::allows per node.
template <bool StopAtFirst>
std::int64_t functionalViolations(const TorusD& torus, const GridLclD& lcl,
                                  std::span<const int> labels,
                                  long long vBegin, long long vEnd) {
  const int dims = torus.dims();
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::int64_t bad = 0;
  for (long long v = vBegin; v < vEnd; ++v) {
    const int c = labels[static_cast<std::size_t>(v)];
    bool violated;
    if (c < 0 || c >= lcl.sigma()) {
      violated = true;
    } else {
      for (int a = 0; a < dims; ++a) {
        nbrs[static_cast<std::size_t>(2 * a)] =
            labels[static_cast<std::size_t>(torus.step(v, a, true))];
        nbrs[static_cast<std::size_t>(2 * a + 1)] =
            labels[static_cast<std::size_t>(torus.step(v, a, false))];
      }
      violated = !lcl.allows(c, nbrs);
    }
    if (violated) {
      if constexpr (StopAtFirst) return 1;
      ++bad;
    }
  }
  return bad;
}

void checkDims(const TorusD& torus, const GridLclD& lcl) {
  if (torus.dims() != lcl.dims()) {
    throw std::invalid_argument("verifier: torus/problem dimension mismatch");
  }
}

template <bool StopAtFirst>
std::int64_t violationsKernel(const TorusD& torus, const GridLclD& lcl,
                              std::span<const int> labels) {
  checkDims(torus, lcl);
  if (static_cast<long long>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
  using verify_probes::Tier;
  if (lcl.hasTable() &&
      verifier_detail::allLabelsInRange(lcl.sigma(), labels)) {
    const LclTableD& table = lcl.table();
    const long long lines = verifier_detail::lineCountD(torus);
    if (verifier_detail::bitsliceSelectedD(lcl, torus.size())) {
      verify_probes::recordCall(Tier::kBitsliced, torus.size());
      telemetry::ScopedSpan span(verify_probes::spanName(Tier::kBitsliced));
      if (const LclTable* table2d = table.as2d()) {
        // One 2D bit-sliced code path: the delegated table's plan runs the
        // rolling row kernel straight off the labels, no staging.
        return verifier_detail::bitsliceViolationRows(
            *table2d, torus.n(), static_cast<int>(lines), labels.data(), 0,
            static_cast<int>(lines), StopAtFirst);
      }
      LabelPlanes planes =
          verifier_detail::bitsliceMakePlanesD(torus, table);
      if constexpr (!StopAtFirst) {
        planes.setRows(labels, 0, lines);
        return planesLineViolations<false>(*table.bitslicePlanD(), torus,
                                           planes, 0, lines);
      } else {
        // Early-exit contract: stage progressively, one outermost-axis
        // block (lines / n lines) ahead of the scan, so a violation in
        // the first block costs O(block) transposition, not O(N). Every
        // outer-axis neighbour of a line lies within +-1 block, so the
        // scan of block i only needs blocks i-1, i, i+1 (cyclically):
        // the wrap block is staged up front, the rest one block ahead.
        const long long blockLines = std::max(1LL, lines / torus.n());
        planes.setRows(labels, lines - blockLines, lines);  // wrap block
        long long stagedEnd = 0;
        for (long long begin = 0; begin < lines; begin += blockLines) {
          const long long end = std::min(begin + blockLines, lines);
          const long long need =
              std::min(end + blockLines, lines - blockLines);
          if (need > stagedEnd) {
            planes.setRows(labels, stagedEnd, need);
            stagedEnd = need;
          }
          if (planesLineViolations<true>(*table.bitslicePlanD(), torus,
                                         planes, begin, end) > 0) {
            return 1;
          }
        }
        return 0;
      }
    }
    verify_probes::recordCall(Tier::kTable, torus.size());
    telemetry::ScopedSpan span(verify_probes::spanName(Tier::kTable));
    return tableViolationLines<StopAtFirst>(table, torus, labels.data(), 0,
                                            lines);
  }
  verify_probes::recordCall(Tier::kFunctional, torus.size());
  telemetry::ScopedSpan span(verify_probes::spanName(Tier::kFunctional));
  return functionalViolations<StopAtFirst>(torus, lcl, labels, 0,
                                           torus.size());
}

}  // namespace

std::vector<Violation> listViolations(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labels,
                                      int maxReported) {
  checkDims(torus, lcl);
  if (static_cast<long long>(labels.size()) != torus.size()) {
    throw std::invalid_argument("listViolations: labelling size mismatch");
  }
  const int dims = torus.dims();
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::vector<Violation> violations;
  for (long long v = 0; v < torus.size() &&
                        static_cast<int>(violations.size()) < maxReported;
       ++v) {
    const int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= lcl.sigma()) {
      violations.push_back({v, "label out of alphabet"});
      continue;
    }
    for (int a = 0; a < dims; ++a) {
      nbrs[static_cast<std::size_t>(2 * a)] =
          labels[static_cast<std::size_t>(torus.step(v, a, true))];
      nbrs[static_cast<std::size_t>(2 * a + 1)] =
          labels[static_cast<std::size_t>(torus.step(v, a, false))];
    }
    if (!lcl.allows(c, nbrs)) {
      std::ostringstream os;
      os << "constraint violated at (";
      const std::vector<int> coords = torus.coords(v);
      for (int a = 0; a < dims; ++a) {
        if (a > 0) os << ",";
        os << coords[static_cast<std::size_t>(a)];
      }
      os << "): c=" << lcl.labelName(c);
      for (int a = 0; a < dims; ++a) {
        os << " +" << a << "="
           << lcl.labelName(nbrs[static_cast<std::size_t>(2 * a)]) << " -" << a
           << "=" << lcl.labelName(nbrs[static_cast<std::size_t>(2 * a + 1)]);
      }
      violations.push_back({v, os.str()});
    }
  }
  return violations;
}

bool verify(const TorusD& torus, const GridLclD& lcl,
            std::span<const int> labels) {
  return violationsKernel<true>(torus, lcl, labels) == 0;
}

std::int64_t countViolations(const TorusD& torus, const GridLclD& lcl,
                             std::span<const int> labels) {
  return violationsKernel<false>(torus, lcl, labels);
}

std::vector<std::uint8_t> verifyBatch(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labelsBatch) {
  const std::size_t count = verifier_detail::batchCountD(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::uint8_t> feasible(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    feasible[i] = violationsKernel<true>(
                      torus, lcl, labelsBatch.subspan(i * stride, stride)) == 0
                      ? 1
                      : 0;
  }
  return feasible;
}

std::vector<std::int64_t> countViolationsBatch(
    const TorusD& torus, const GridLclD& lcl,
    std::span<const int> labelsBatch) {
  const std::size_t count = verifier_detail::batchCountD(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::int64_t> violations(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    violations[i] = violationsKernel<false>(
        torus, lcl, labelsBatch.subspan(i * stride, stride));
  }
  return violations;
}

namespace verifier_detail {

long long lineCountD(const TorusD& torus) {
  return torus.size() / torus.n();
}

std::size_t batchCountD(const TorusD& torus,
                        std::span<const int> labelsBatch) {
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  if (stride == 0 || labelsBatch.size() % stride != 0) {
    throw std::invalid_argument(
        "verifier: batch size is not a multiple of torus.size()");
  }
  return labelsBatch.size() / stride;
}

std::int64_t tableViolationLinesD(const LclTableD& table, const TorusD& torus,
                                  const int* labels, long long lineBegin,
                                  long long lineEnd, bool stopAtFirst) {
  return stopAtFirst
             ? tableViolationLines<true>(table, torus, labels, lineBegin,
                                         lineEnd)
             : tableViolationLines<false>(table, torus, labels, lineBegin,
                                          lineEnd);
}

bool bitsliceSelectedD(const GridLclD& lcl, long long nodes) {
  if (!bitslice::enabled() || nodes < bitslice::kMinNodesForBitslice ||
      !lcl.hasTable()) {
    return false;
  }
  const LclTableD& table = lcl.table();
  if (const LclTable* table2d = table.as2d()) {
    return table2d->bitslicePlan() != nullptr;
  }
  return table.bitslicePlanD() != nullptr;
}

LabelPlanes bitsliceMakePlanesD(const TorusD& torus, const LclTableD& table) {
  if (table.as2d() != nullptr) return LabelPlanes();
  return LabelPlanes(torus.n(), lineCountD(torus),
                     table.bitslicePlanD()->planes);
}

void bitsliceStageLinesD(const TorusD& torus, std::span<const int> labels,
                         LabelPlanes& planes, long long lineBegin,
                         long long lineEnd) {
  (void)torus;
  planes.setRows(labels, lineBegin, lineEnd);
}

std::int64_t bitsliceViolationLinesD(const LclTableD& table,
                                     const TorusD& torus,
                                     const LabelPlanes& planes,
                                     const int* labels, long long lineBegin,
                                     long long lineEnd, bool stopAtFirst) {
  if (const LclTable* table2d = table.as2d()) {
    return bitsliceViolationRows(
        *table2d, torus.n(), static_cast<int>(lineCountD(torus)), labels,
        static_cast<int>(lineBegin), static_cast<int>(lineEnd), stopAtFirst);
  }
  const bitslice::BitslicePlanD& plan = *table.bitslicePlanD();
  return stopAtFirst ? planesLineViolations<true>(plan, torus, planes,
                                                  lineBegin, lineEnd)
                     : planesLineViolations<false>(plan, torus, planes,
                                                   lineBegin, lineEnd);
}

std::int64_t functionalViolationRangeD(const TorusD& torus,
                                       const GridLclD& lcl,
                                       std::span<const int> labels,
                                       long long vBegin, long long vEnd,
                                       bool stopAtFirst) {
  return stopAtFirst
             ? functionalViolations<true>(torus, lcl, labels, vBegin, vEnd)
             : functionalViolations<false>(torus, lcl, labels, vBegin, vEnd);
}

}  // namespace verifier_detail

}  // namespace lclgrid
