#include "lcl/global_solver.hpp"

#include "sat/cnf.hpp"
#include "support/numeric.hpp"

namespace lclgrid {

namespace {

/// Builds the full node-label CSP for the LCL on the torus into `solver`,
/// routing every clause (domain and blocking alike) through `add` so the
/// incremental prober can guard the instance with an activation literal
/// while solveGlobally keeps plain unconditional clauses.
template <typename AddClause>
std::vector<sat::DomainVar> buildTorusCsp(const Torus2D& torus,
                                          const GridLcl& lcl,
                                          sat::Solver& solver,
                                          AddClause&& add) {
  const int sigma = lcl.sigma();
  std::vector<sat::DomainVar> label(static_cast<std::size_t>(torus.size()));
  std::vector<int> atLeastOne;
  for (int v = 0; v < torus.size(); ++v) {
    sat::DomainVar dv(solver, sigma);
    atLeastOne.clear();
    for (int c = 0; c < sigma; ++c) atLeastOne.push_back(dv.is(c));
    add(atLeastOne);
    for (int a = 0; a < sigma; ++a) {
      for (int b = a + 1; b < sigma; ++b) {
        add({dv.isNot(a), dv.isNot(b)});
      }
    }
    label[static_cast<std::size_t>(v)] = dv;
  }

  // One blocking clause per forbidden constraint-table row and node.
  // Positions outside the dependency mask cannot influence the predicate;
  // the compiled table already squeezes them out, so the clause generator
  // only walks rows that actually exist (and skips fully-allowed rows a
  // word at a time). Problems too large to compile fall back to the
  // sigma^5 predicate enumeration the seed used.
  const std::uint8_t deps = lcl.deps();
  const bool useN = deps & kDepN, useE = deps & kDepE;
  const bool useS = deps & kDepS, useW = deps & kDepW;
  std::vector<int> clause;
  for (int v = 0; v < torus.size(); ++v) {
    const int nN = torus.step(v, Dir::North);
    const int nE = torus.step(v, Dir::East);
    const int nS = torus.step(v, Dir::South);
    const int nW = torus.step(v, Dir::West);
    auto blockTuple = [&](int c, int n, int e, int s, int w) {
      clause.clear();
      clause.push_back(label[static_cast<std::size_t>(v)].isNot(c));
      if (useN) clause.push_back(label[static_cast<std::size_t>(nN)].isNot(n));
      if (useE) clause.push_back(label[static_cast<std::size_t>(nE)].isNot(e));
      if (useS) clause.push_back(label[static_cast<std::size_t>(nS)].isNot(s));
      if (useW) clause.push_back(label[static_cast<std::size_t>(nW)].isNot(w));
      add(clause);
    };
    if (lcl.hasTable()) {
      lcl.table().forEachForbidden(blockTuple);
    } else {
      for (int c = 0; c < sigma; ++c) {
        for (int n = 0; n < (useN ? sigma : 1); ++n) {
          for (int e = 0; e < (useE ? sigma : 1); ++e) {
            for (int s = 0; s < (useS ? sigma : 1); ++s) {
              for (int w = 0; w < (useW ? sigma : 1); ++w) {
                if (!lcl.allows(c, n, e, s, w)) blockTuple(c, n, e, s, w);
              }
            }
          }
        }
      }
    }
  }
  return label;
}

std::vector<int> decodeModel(int nodeCount,
                             const std::vector<sat::DomainVar>& label,
                             const sat::Solver& solver) {
  std::vector<int> labels(static_cast<std::size_t>(nodeCount));
  for (int v = 0; v < nodeCount; ++v) {
    labels[static_cast<std::size_t>(v)] =
        label[static_cast<std::size_t>(v)].decode(solver);
  }
  return labels;
}

}  // namespace

GlobalSolveResult solveGlobally(const Torus2D& torus, const GridLcl& lcl,
                                std::uint64_t seed,
                                std::int64_t conflictBudget) {
  GlobalSolveResult result;

  sat::Solver solver;
  auto label = buildTorusCsp(
      torus, lcl, solver,
      [&](const std::vector<int>& clause) { solver.addClause(clause); });

  if (seed == 0) {
    auto outcome = solver.solve(conflictBudget);
    if (outcome == sat::Result::Sat) {
      result.feasible = true;
      result.labels = decodeModel(torus.size(), label, solver);
    }
    result.decided = outcome != sat::Result::Unknown;
    result.satConflicts = solver.conflicts();
    return result;
  }

  // Seeded mode: force a random node to each label in random order and take
  // the first satisfiable branch. The union of branches covers the whole
  // space, so feasibility is unchanged, but different seeds surface
  // different solutions (used by the Section 9 invariant experiments).
  // Branches run as assumptions on the one live solver: the CSP is encoded
  // once and every branch inherits what the earlier branches learnt.
  SplitMix64 rng(seed);
  const int forcedNode =
      static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(torus.size())));
  std::vector<int> order(static_cast<std::size_t>(lcl.sigma()));
  for (int i = 0; i < lcl.sigma(); ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = lcl.sigma() - 1; i > 0; --i) {
    int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }

  for (int candidate : order) {
    auto outcome = solver.solve(
        {label[static_cast<std::size_t>(forcedNode)].is(candidate)},
        conflictBudget);
    if (outcome == sat::Result::Unknown) result.decided = false;
    if (outcome == sat::Result::Sat) {
      result.feasible = true;
      result.labels = decodeModel(torus.size(), label, solver);
      break;
    }
  }
  result.satConflicts = solver.conflicts();
  return result;
}

FeasibilityProber::FeasibilityProber(const GridLcl& lcl) : lcl_(lcl) {}

FeasibilityProber::SizeBlock& FeasibilityProber::blockFor(int n) {
  for (SizeBlock& block : blocks_) {
    if (block.n == n) return block;
  }
  SizeBlock block;
  block.n = n;
  block.group = sat::ClauseGroup(solver_);
  Torus2D torus(n);
  block.label = buildTorusCsp(
      torus, lcl_, solver_, [&](const std::vector<int>& clause) {
        block.group.addClause(solver_, clause);
      });
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

GlobalSolveResult FeasibilityProber::probe(int n,
                                           std::int64_t conflictBudget) {
  SizeBlock& block = blockFor(n);
  GlobalSolveResult result;
  const std::int64_t conflictsBefore = solver_.conflicts();
  auto outcome = solver_.solve({block.group.activation()}, conflictBudget);
  result.satConflicts = solver_.conflicts() - conflictsBefore;
  result.decided = outcome != sat::Result::Unknown;
  if (outcome == sat::Result::Sat) {
    result.feasible = true;
    result.labels = decodeModel(n * n, block.label, solver_);
  }
  return result;
}

int bruteForceRounds(int n) { return 2 * (n / 2); }

}  // namespace lclgrid
