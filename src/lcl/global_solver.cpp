#include "lcl/global_solver.hpp"

#include "sat/cnf.hpp"
#include "support/numeric.hpp"

namespace lclgrid {

namespace {

/// Builds the full node-label CSP for the LCL on the torus into `solver`.
std::vector<sat::DomainVar> buildTorusCsp(const Torus2D& torus,
                                          const GridLcl& lcl,
                                          sat::Solver& solver) {
  const int sigma = lcl.sigma();
  std::vector<sat::DomainVar> label(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    label[static_cast<std::size_t>(v)] = sat::makeDomainVar(solver, sigma);
  }

  // One blocking clause per forbidden constraint-table row and node.
  // Positions outside the dependency mask cannot influence the predicate;
  // the compiled table already squeezes them out, so the clause generator
  // only walks rows that actually exist (and skips fully-allowed rows a
  // word at a time). Problems too large to compile fall back to the
  // sigma^5 predicate enumeration the seed used.
  const std::uint8_t deps = lcl.deps();
  const bool useN = deps & kDepN, useE = deps & kDepE;
  const bool useS = deps & kDepS, useW = deps & kDepW;
  std::vector<int> clause;
  for (int v = 0; v < torus.size(); ++v) {
    const int nN = torus.step(v, Dir::North);
    const int nE = torus.step(v, Dir::East);
    const int nS = torus.step(v, Dir::South);
    const int nW = torus.step(v, Dir::West);
    auto blockTuple = [&](int c, int n, int e, int s, int w) {
      clause.clear();
      clause.push_back(label[static_cast<std::size_t>(v)].isNot(c));
      if (useN) clause.push_back(label[static_cast<std::size_t>(nN)].isNot(n));
      if (useE) clause.push_back(label[static_cast<std::size_t>(nE)].isNot(e));
      if (useS) clause.push_back(label[static_cast<std::size_t>(nS)].isNot(s));
      if (useW) clause.push_back(label[static_cast<std::size_t>(nW)].isNot(w));
      solver.addClause(clause);
    };
    if (lcl.hasTable()) {
      lcl.table().forEachForbidden(blockTuple);
    } else {
      for (int c = 0; c < sigma; ++c) {
        for (int n = 0; n < (useN ? sigma : 1); ++n) {
          for (int e = 0; e < (useE ? sigma : 1); ++e) {
            for (int s = 0; s < (useS ? sigma : 1); ++s) {
              for (int w = 0; w < (useW ? sigma : 1); ++w) {
                if (!lcl.allows(c, n, e, s, w)) blockTuple(c, n, e, s, w);
              }
            }
          }
        }
      }
    }
  }
  return label;
}

std::vector<int> decodeModel(const Torus2D& torus,
                             const std::vector<sat::DomainVar>& label,
                             const sat::Solver& solver) {
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] =
        label[static_cast<std::size_t>(v)].decode(solver);
  }
  return labels;
}

}  // namespace

GlobalSolveResult solveGlobally(const Torus2D& torus, const GridLcl& lcl,
                                std::uint64_t seed,
                                std::int64_t conflictBudget) {
  GlobalSolveResult result;

  if (seed == 0) {
    sat::Solver solver;
    auto label = buildTorusCsp(torus, lcl, solver);
    auto outcome = solver.solve(conflictBudget);
    if (outcome == sat::Result::Sat) {
      result.feasible = true;
      result.labels = decodeModel(torus, label, solver);
    }
    result.decided = outcome != sat::Result::Unknown;
    result.satConflicts = solver.conflicts();
    return result;
  }

  // Seeded mode: force a random node to each label in random order and take
  // the first satisfiable branch. The union of branches covers the whole
  // space, so feasibility is unchanged, but different seeds surface
  // different solutions (used by the Section 9 invariant experiments).
  SplitMix64 rng(seed);
  const int forcedNode =
      static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(torus.size())));
  std::vector<int> order(static_cast<std::size_t>(lcl.sigma()));
  for (int i = 0; i < lcl.sigma(); ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = lcl.sigma() - 1; i > 0; --i) {
    int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }

  for (int candidate : order) {
    sat::Solver solver;
    auto label = buildTorusCsp(torus, lcl, solver);
    solver.addClause(
        {label[static_cast<std::size_t>(forcedNode)].is(candidate)});
    auto outcome = solver.solve(conflictBudget);
    result.satConflicts += solver.conflicts();
    if (outcome == sat::Result::Unknown) result.decided = false;
    if (outcome == sat::Result::Sat) {
      result.feasible = true;
      result.labels = decodeModel(torus, label, solver);
      return result;
    }
  }
  return result;
}

int bruteForceRounds(int n) { return 2 * (n / 2); }

}  // namespace lclgrid
