#include "lcl/lcl_table.hpp"

#include <bit>
#include <stdexcept>

namespace lclgrid {

namespace {

std::size_t depRowCount(int sigma, std::uint8_t deps) {
  std::size_t rows = 1;
  for (std::uint8_t bit :
       {kTableDepN, kTableDepE, kTableDepS, kTableDepW}) {
    if (deps & bit) rows *= static_cast<std::size_t>(sigma);
  }
  return rows;
}

}  // namespace

bool LclTable::compilable(int sigma, std::uint8_t deps) {
  if (sigma < 1 || sigma > kMaxSigma) return false;
  return depRowCount(sigma, deps) <= kMaxRows;
}

LclTable::LclTable(int sigma, std::uint8_t deps)
    : sigma_(sigma), deps_(deps) {
  if (!compilable(sigma, deps)) {
    throw std::invalid_argument("LclTable: relation too large to compile");
  }
  fullRow_ = sigma == 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << sigma) - 1;
  std::size_t stride = 1;
  strideW_ = useW() ? stride : 0;
  if (useW()) stride *= static_cast<std::size_t>(sigma);
  strideS_ = useS() ? stride : 0;
  if (useS()) stride *= static_cast<std::size_t>(sigma);
  strideE_ = useE() ? stride : 0;
  if (useE()) stride *= static_cast<std::size_t>(sigma);
  strideN_ = useN() ? stride : 0;
  if (useN()) stride *= static_cast<std::size_t>(sigma);
  rows_.assign(stride, 0);
}

LclTable LclTable::compile(int sigma, std::uint8_t deps,
                           const Predicate& ok) {
  if (!ok) throw std::invalid_argument("LclTable::compile: missing predicate");
  LclTable table(sigma, deps);
  // The deps mask is trusted, exactly as the seed's CNF generators trusted
  // it: irrelevant positions are evaluated at 0 only. The property tests
  // cross-check table lookups against the raw predicate over all of
  // sigma^5, which catches dishonest masks.
  const int dN = table.useN() ? sigma : 1;
  const int dE = table.useE() ? sigma : 1;
  const int dS = table.useS() ? sigma : 1;
  const int dW = table.useW() ? sigma : 1;
  std::size_t index = 0;
  for (int n = 0; n < dN; ++n) {
    for (int e = 0; e < dE; ++e) {
      for (int s = 0; s < dS; ++s) {
        for (int w = 0; w < dW; ++w) {
          std::uint64_t row = 0;
          for (int c = 0; c < sigma; ++c) {
            if (ok(c, n, e, s, w)) row |= std::uint64_t{1} << c;
          }
          table.rows_[index++] = row;
        }
      }
    }
  }
  table.finalise();
  return table;
}

LclTable LclTable::disjointUnion(const LclTable& p, const LclTable& q) {
  const int sigmaP = p.sigma_;
  const int sigma = sigmaP + q.sigma_;
  // Family consistency makes every position relevant in the union.
  const std::uint8_t deps =
      kTableDepN | kTableDepE | kTableDepS | kTableDepW;
  LclTable table(sigma, deps);
  auto family = [sigmaP](int label) { return label < sigmaP; };
  std::size_t index = 0;
  for (int n = 0; n < sigma; ++n) {
    for (int e = 0; e < sigma; ++e) {
      for (int s = 0; s < sigma; ++s) {
        for (int w = 0; w < sigma; ++w) {
          const bool nP = family(n);
          std::uint64_t row = 0;
          if (nP == family(e) && nP == family(s) && nP == family(w)) {
            if (nP) {
              row = p.centreMask(n, e, s, w);
            } else {
              row = q.centreMask(n - sigmaP, e - sigmaP, s - sigmaP,
                                 w - sigmaP)
                    << sigmaP;
            }
          }
          table.rows_[index++] = row;
        }
      }
    }
  }
  table.finalise();
  return table;
}

LclTable LclTable::remap(const LclTable& p, std::span<const int> toOld) {
  const int sigma = static_cast<int>(toOld.size());
  for (int old : toOld) {
    if (old < 0 || old >= p.sigma_) {
      throw std::invalid_argument("LclTable::remap: label out of range");
    }
  }
  LclTable table(sigma, p.deps_);
  const int dN = table.useN() ? sigma : 1;
  const int dE = table.useE() ? sigma : 1;
  const int dS = table.useS() ? sigma : 1;
  const int dW = table.useW() ? sigma : 1;
  std::size_t index = 0;
  for (int n = 0; n < dN; ++n) {
    for (int e = 0; e < dE; ++e) {
      for (int s = 0; s < dS; ++s) {
        for (int w = 0; w < dW; ++w) {
          const std::uint64_t oldRow =
              p.centreMask(toOld[static_cast<std::size_t>(n)],
                           toOld[static_cast<std::size_t>(e)],
                           toOld[static_cast<std::size_t>(s)],
                           toOld[static_cast<std::size_t>(w)]);
          std::uint64_t row = 0;
          for (int c = 0; c < sigma; ++c) {
            row |= ((oldRow >> toOld[static_cast<std::size_t>(c)]) &
                    std::uint64_t{1})
                   << c;
          }
          table.rows_[index++] = row;
        }
      }
    }
  }
  table.finalise();
  return table;
}

long long LclTable::forbiddenRowCount() const {
  long long forbidden = 0;
  for (std::uint64_t row : rows_) {
    forbidden += sigma_ - std::popcount(row & fullRow_);
  }
  return forbidden;
}

void LclTable::finalise() {
  const int s = sigma_;

  // FNV-1a over the content that defines the relation. The strides follow
  // from (sigma, deps), so hashing sigma, deps and the rows covers the
  // whole table.
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  auto mix = [](std::uint64_t hash, std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffu;
      hash *= kFnvPrime;
    }
    return hash;
  };
  std::uint64_t hash = kFnvOffset;
  hash = mix(hash, static_cast<std::uint64_t>(sigma_));
  hash = mix(hash, static_cast<std::uint64_t>(deps_));
  for (std::uint64_t row : rows_) hash = mix(hash, row);
  fingerprint_ = hash;

  trivialLabel_ = -1;
  for (int c = 0; c < s; ++c) {
    if (allows(c, c, c, c, c)) {
      trivialLabel_ = c;
      break;
    }
  }

  // Maximal candidate pair projections, as in the seed's lazy
  // computeProjections but driven by table rows: a pair participates if it
  // occurs in some allowed cross, viewed from either of the two nodes it
  // touches. Positions outside the dependency mask occur with every value
  // in allowed crosses, so they are expanded in bulk after the row sweep.
  hPairs_.assign(static_cast<std::size_t>(s) * s, 0);
  vPairs_.assign(static_cast<std::size_t>(s) * s, 0);
  std::vector<std::uint8_t> occurs(static_cast<std::size_t>(s), 0);
  visitRows([&](std::uint64_t row, int n, int e, int so, int w) {
    if (row == 0) return;
    for (int c = 0; c < s; ++c) {
      if (!((row >> c) & 1u)) continue;
      occurs[static_cast<std::size_t>(c)] = 1;
      if (useW()) hPairs_[static_cast<std::size_t>(w) * s + c] = 1;
      if (useE()) hPairs_[static_cast<std::size_t>(c) * s + e] = 1;
      if (useS()) vPairs_[static_cast<std::size_t>(so) * s + c] = 1;
      if (useN()) vPairs_[static_cast<std::size_t>(c) * s + n] = 1;
    }
  });
  for (int c = 0; c < s; ++c) {
    if (!occurs[static_cast<std::size_t>(c)]) continue;
    for (int other = 0; other < s; ++other) {
      if (!useW()) hPairs_[static_cast<std::size_t>(other) * s + c] = 1;
      if (!useE()) hPairs_[static_cast<std::size_t>(c) * s + other] = 1;
      if (!useS()) vPairs_[static_cast<std::size_t>(other) * s + c] = 1;
      if (!useN()) vPairs_[static_cast<std::size_t>(c) * s + other] = 1;
    }
  }

  // Decomposability: the pair projections reproduce the relation exactly.
  // Bitset form: one candidate-centre mask per pair constraint, compared
  // against the table row for each of the sigma^4 neighbourhoods.
  std::vector<std::uint64_t> fromWest(static_cast<std::size_t>(s), 0);
  std::vector<std::uint64_t> toEast(static_cast<std::size_t>(s), 0);
  std::vector<std::uint64_t> fromSouth(static_cast<std::size_t>(s), 0);
  std::vector<std::uint64_t> toNorth(static_cast<std::size_t>(s), 0);
  for (int a = 0; a < s; ++a) {
    for (int c = 0; c < s; ++c) {
      if (hPairs_[static_cast<std::size_t>(a) * s + c]) {
        fromWest[static_cast<std::size_t>(a)] |= std::uint64_t{1} << c;
      }
      if (hPairs_[static_cast<std::size_t>(c) * s + a]) {
        toEast[static_cast<std::size_t>(a)] |= std::uint64_t{1} << c;
      }
      if (vPairs_[static_cast<std::size_t>(a) * s + c]) {
        fromSouth[static_cast<std::size_t>(a)] |= std::uint64_t{1} << c;
      }
      if (vPairs_[static_cast<std::size_t>(c) * s + a]) {
        toNorth[static_cast<std::size_t>(a)] |= std::uint64_t{1} << c;
      }
    }
  }
  edgeDecomposable_ = true;
  for (int n = 0; n < s && edgeDecomposable_; ++n) {
    const std::uint64_t maskN = toNorth[static_cast<std::size_t>(n)];
    const std::size_t baseN = static_cast<std::size_t>(n) * strideN_;
    for (int e = 0; e < s && edgeDecomposable_; ++e) {
      const std::uint64_t maskNE =
          maskN & toEast[static_cast<std::size_t>(e)];
      const std::size_t baseNE = baseN + static_cast<std::size_t>(e) * strideE_;
      for (int so = 0; so < s && edgeDecomposable_; ++so) {
        const std::uint64_t maskNES =
            maskNE & fromSouth[static_cast<std::size_t>(so)];
        const std::size_t baseNES =
            baseNE + static_cast<std::size_t>(so) * strideS_;
        for (int w = 0; w < s; ++w) {
          const std::uint64_t byPairs =
              maskNES & fromWest[static_cast<std::size_t>(w)];
          if (byPairs !=
              rows_[baseNES + static_cast<std::size_t>(w) * strideW_]) {
            edgeDecomposable_ = false;
            break;
          }
        }
      }
    }
  }

  // Bit-sliced evaluation plan (lcl/label_planes.hpp). Preferred shape:
  // the h/v pair projections compiled into plane-level networks -- exact
  // precisely when the table is edge-decomposable. One word-op per term,
  // so synthesis gives up when either pair set is too dense to beat the
  // row-pointer kernel. Fallback shape for small non-decomposable
  // alphabets: the nibble-indexed validity LUT.
  bitslicePlan_.reset();
  if (edgeDecomposable_ && s <= 8) {
    auto plan = std::make_shared<bitslice::BitslicePlan>();
    plan->kind = bitslice::BitslicePlan::Kind::kPairPlanes;
    plan->planes = bitslice::planeCount(s);
    plan->h = bitslice::compilePairNetwork(
        s, [this](int west, int east) { return horizontalOk(west, east); });
    plan->v = bitslice::compilePairNetwork(
        s, [this](int south, int north) { return verticalOk(south, north); });
    if (static_cast<int>(plan->h.terms.size()) <= bitslice::kMaxPairTerms &&
        static_cast<int>(plan->v.terms.size()) <= bitslice::kMaxPairTerms) {
      bitslicePlan_ = std::move(plan);
    }
  }
  if (!bitslicePlan_ && s <= 4) {
    auto plan = std::make_shared<bitslice::BitslicePlan>();
    plan->kind = bitslice::BitslicePlan::Kind::kNibbleLut;
    plan->nibble = bitslice::compileNibbleLut(
        s, [this](int c, int n, int e, int so, int w) {
          return allows(c, n, e, so, w);
        });
    bitslicePlan_ = std::move(plan);
  }
}

}  // namespace lclgrid
