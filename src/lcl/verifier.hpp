// Verification of LCL labellings on tori: the locally checkable predicate is
// evaluated at every node. Used as the ground truth behind every algorithm
// and every synthesis result in the library.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/grid_lcl.hpp"

namespace lclgrid {

struct Violation {
  int node = -1;
  std::string description;
};

/// All violated node constraints (empty means the labelling is feasible).
std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported = 16);

/// True iff the labelling is a feasible solution of the LCL on the torus.
bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels);

/// Renders a labelling as an ASCII grid (row y = n-1 on top, matching the
/// north-up orientation), using the problem's label names.
std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels);

}  // namespace lclgrid
