// Verification of LCL labellings on tori: the locally checkable predicate is
// evaluated at every node. Used as the ground truth behind every algorithm
// and every synthesis result in the library.
//
// Two tiers:
//  * diagnostics (listViolations / renderLabelling) -- per-node reports with
//    coordinates and label names, for tests and debugging;
//  * the batched engine (verify / countViolations / verifyBatch /
//    countViolationsBatch) -- compiled-table lookups over flat row buffers,
//    no per-node allocation, amortised over many labellings or many tori in
//    one call. This is the hot path behind the randomised lower-bound
//    experiments and the perf benches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/grid_lcl.hpp"

namespace lclgrid {

struct Violation {
  int node = -1;
  std::string description;
};

/// All violated node constraints (empty means the labelling is feasible).
std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported = 16);

/// True iff the labelling is a feasible solution of the LCL on the torus.
bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels);

/// Number of violated node constraints (nodes carrying out-of-alphabet
/// labels count as violated).
std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels);

/// Batched verification of many labellings of the same torus, stored
/// back-to-back (labelsBatch.size() must be a multiple of torus.size()).
/// Element i of the result is 1 iff labelling i is feasible.
std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch);

/// Per-labelling violation counts for a back-to-back batch.
std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl,
    std::span<const int> labelsBatch);

/// A labelling of some torus; lets one batch call span heterogeneous
/// instance sizes (many tori in one pass).
struct LabellingInstance {
  const Torus2D* torus = nullptr;
  std::span<const int> labels;
};

/// Batched verification across heterogeneous tori.
std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances);

/// Renders a labelling as an ASCII grid (row y = n-1 on top, matching the
/// north-up orientation), using the problem's label names.
std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels);

}  // namespace lclgrid
