// Verification of LCL labellings on tori: the locally checkable predicate is
// evaluated at every node. Used as the ground truth behind every algorithm
// and every synthesis result in the library.
//
// Two tiers of interface:
//  * diagnostics (listViolations / renderLabelling) -- per-node reports with
//    coordinates and label names, for tests and debugging;
//  * the batched engine (verify / countViolations / verifyBatch /
//    countViolationsBatch) -- compiled-table lookups over flat row buffers,
//    no per-node allocation, amortised over many labellings or many tori in
//    one call. This is the hot path behind the randomised lower-bound
//    experiments and the perf benches.
//
// The batched engine itself selects between three kernel tiers per call
// (see docs/perf.md for the selection rules and measurements):
//  * functional -- the predicate loop, for uncompiled problems or
//    out-of-alphabet labels;
//  * row-pointer -- one compiled-table row load and a bit test per node;
//  * bit-sliced -- for small alphabets the labelling is transposed into
//    bit-planes (lcl/label_planes.hpp) and one uint64_t operation decides
//    64 nodes, via the plan the table synthesised at compile time.
//    LCLGRID_BITSLICE=0 (or bitslice::setEnabled(false)) falls back to the
//    row-pointer kernel; every tier produces identical counts.
//
// Semantics: verify() decides feasibility and *early-exits* -- it returns
// false at the first violating node (first violating 64-node word on the
// bit-sliced tier; first violating shard chunk when threaded), without
// scanning the rest of the labelling. On the staged d >= 3 bit-sliced
// path the serial engine transposes one outermost-axis block ahead of the
// scan, so an early violation also skips most of the staging; the
// threaded overload runs staging as one full parallel pass before its
// cooperative early-exit scan. countViolations() always scans everything
// and reports the exact violation total, identically on every kernel tier
// and thread count. The two agree on feasibility
// (verify == (countViolations == 0)); use verify for yes/no questions and
// countViolations when the count itself is the datum.
//
// Every batched entry point also has a threaded overload taking
// engine::EngineOptions: the flat row-pointer kernel is sharded across the
// work-stealing pool (per-shard accumulators, combined in shard order, so
// counts are bit-identical to the serial path) and batches run one labelling
// per task. Implemented in src/engine/parallel_verifier.cpp -- callers of
// the threaded overloads link lclgrid_engine (or the umbrella `lclgrid`
// target); an overload called with EngineOptions{.threads = 1} takes
// exactly the serial code path. Thread-safety: the threaded overloads only read the torus, the
// problem and the label buffers; uncompiled problems must carry re-entrant
// predicates (every problem in the library does).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/engine_options.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/label_planes.hpp"

namespace lclgrid {

struct Violation {
  /// Linear node id; wide enough for TorusD instances beyond 2^31 nodes.
  long long node = -1;
  std::string description;
};

/// All violated node constraints (empty means the labelling is feasible).
std::vector<Violation> listViolations(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels,
                                      int maxReported = 16);

/// True iff the labelling is a feasible solution of the LCL on the torus.
bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels);

/// Number of violated node constraints (nodes carrying out-of-alphabet
/// labels count as violated).
std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels);

/// Batched verification of many labellings of the same torus, stored
/// back-to-back (labelsBatch.size() must be a multiple of torus.size()).
/// Element i of the result is 1 iff labelling i is feasible.
std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch);

/// Per-labelling violation counts for a back-to-back batch.
std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl,
    std::span<const int> labelsBatch);

/// A labelling of some torus; lets one batch call span heterogeneous
/// instance sizes (many tori in one pass).
struct LabellingInstance {
  const Torus2D* torus = nullptr;
  std::span<const int> labels;
};

/// Batched verification across heterogeneous tori.
std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances);

// --- d-dimensional tori (src/lcl/verifier_d.cpp) ---------------------------
// The same two tiers on TorusD: compiled LclTableD row-pointer kernel when
// the problem compiled and all labels are in range, functional fallback
// otherwise. A 2-dimensional GridLclD delegates its table to an LclTable,
// and these entry points route it through the existing 2D row kernel, so
// d = 2 runs the exact same code as the Torus2D overloads.

/// All violated node constraints on a d-dimensional torus.
std::vector<Violation> listViolations(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labels,
                                      int maxReported = 16);

/// True iff the labelling is a feasible solution of the LCL on the torus.
bool verify(const TorusD& torus, const GridLclD& lcl,
            std::span<const int> labels);

/// Number of violated node constraints (out-of-alphabet centres count).
std::int64_t countViolations(const TorusD& torus, const GridLclD& lcl,
                             std::span<const int> labels);

/// Batched verification of many labellings of the same torus, stored
/// back-to-back (labelsBatch.size() must be a multiple of torus.size()).
std::vector<std::uint8_t> verifyBatch(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labelsBatch);

/// Per-labelling violation counts for a back-to-back batch.
std::vector<std::int64_t> countViolationsBatch(
    const TorusD& torus, const GridLclD& lcl,
    std::span<const int> labelsBatch);

// --- threaded overloads (src/engine/parallel_verifier.cpp) ----------------
// Results are bit-identical to the serial functions above for every thread
// count: shards accumulate independently and are combined in shard order.

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels, const engine::EngineOptions& options);

std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels,
                             const engine::EngineOptions& options);

std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch,
                                      const engine::EngineOptions& options);

std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl, std::span<const int> labelsBatch,
    const engine::EngineOptions& options);

std::vector<std::uint8_t> verifyBatch(const GridLcl& lcl,
                                      std::span<const LabellingInstance> instances,
                                      const engine::EngineOptions& options);

// Threaded TorusD overloads: one labelling is sharded along the torus's
// outermost axes (contiguous ranges of axis-0 lines -- the same flat kernel
// the serial engine runs per shard, accumulators combined in chunk order,
// so counts are bit-identical at every thread count); batches run one
// labelling per work item.

bool verify(const TorusD& torus, const GridLclD& lcl,
            std::span<const int> labels, const engine::EngineOptions& options);

std::int64_t countViolations(const TorusD& torus, const GridLclD& lcl,
                             std::span<const int> labels,
                             const engine::EngineOptions& options);

std::vector<std::uint8_t> verifyBatch(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labelsBatch,
                                      const engine::EngineOptions& options);

std::vector<std::int64_t> countViolationsBatch(
    const TorusD& torus, const GridLclD& lcl, std::span<const int> labelsBatch,
    const engine::EngineOptions& options);

/// Row-range and node-range slices of the serial kernels, exposed so the
/// engine's sharded verifier runs the exact same code per shard. Not part
/// of the stable API.
namespace verifier_detail {

/// True iff every label lies in [0, sigma) -- the precondition of the
/// table kernel.
bool allLabelsInRange(int sigma, std::span<const int> labels);

/// Number of labellings in a back-to-back batch; throws the verifier's
/// std::invalid_argument when the batch is not a whole number of tori.
/// Shared by the serial and sharded batch entry points so their
/// validation cannot diverge.
std::size_t batchCount(const Torus2D& torus, std::span<const int> labelsBatch);

/// Violations of the compiled-table kernel on grid rows [yBegin, yEnd);
/// labels must all be in range. stopAtFirst returns at most 1.
std::int64_t tableViolationRows(const LclTable& table, int n,
                                const int* labels, int yBegin, int yEnd,
                                bool stopAtFirst);

/// True iff in-range labellings of this problem at this instance size run
/// the bit-sliced kernel: the compiled table carries a plan, the global
/// gate is on and the labelling clears the per-call setup floor
/// (bitslice::kMinNodesForBitslice). The sharded verifier keys its kernel
/// choice on this so serial and threaded paths cannot diverge.
bool bitsliceSelected(const GridLcl& lcl, long long nodes);

/// Violations of the bit-sliced kernel on grid rows [yBegin, yEnd) of an
/// nRows x n row-major labelling (rows wrap cyclically); labels must all
/// be in range and the table must carry a plan. Rows are transposed into
/// rolling bit-plane (or packed-nibble) buffers internally, so a shard is
/// self-contained. stopAtFirst returns at most 1, deciding per 64-node
/// word. Counts are bit-identical to tableViolationRows.
std::int64_t bitsliceViolationRows(const LclTable& table, int n, int nRows,
                                   const int* labels, int yBegin, int yEnd,
                                   bool stopAtFirst);

/// Violations of the functional fallback on nodes [vBegin, vEnd).
std::int64_t functionalViolationRange(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labels, int vBegin,
                                      int vEnd, bool stopAtFirst);

/// d-dimensional slices (src/lcl/verifier_d.cpp). A "line" is a contiguous
/// run of n nodes along axis 0; lines are indexed row-major over the outer
/// axes (axis 1 fastest), so a line range is a slab along the outermost
/// axis -- the unit the engine shards across threads.
/// Number of axis-0 lines: torus.size() / torus.n().
long long lineCountD(const TorusD& torus);

/// Number of labellings in a back-to-back TorusD batch; throws
/// std::invalid_argument when the batch is not a whole number of tori.
std::size_t batchCountD(const TorusD& torus, std::span<const int> labelsBatch);

/// Violations of the compiled-table kernel on lines [lineBegin, lineEnd);
/// labels must all be in range. Routes d = 2 through tableViolationRows on
/// the delegated LclTable. stopAtFirst returns at most 1.
std::int64_t tableViolationLinesD(const LclTableD& table, const TorusD& torus,
                                  const int* labels, long long lineBegin,
                                  long long lineEnd, bool stopAtFirst);

/// True iff in-range labellings of this d-dimensional problem at this
/// instance size run the bit-sliced kernel: the gate is on, the instance
/// clears the setup floor, and either the d = 2 delegated table carries a
/// 2D plan (the rolling row kernel runs directly on the labels) or the
/// table carries a per-axis plan (the staged line kernel below).
bool bitsliceSelectedD(const GridLclD& lcl, long long nodes);

/// Plane buffer sized for the staged d >= 3 line kernel (lineCountD rows
/// of torus.n() labels, plan->planes planes). Default-constructed (empty)
/// when the table delegates to 2D -- that path needs no staging.
LabelPlanes bitsliceMakePlanesD(const TorusD& torus, const LclTableD& table);

/// Transposes lines [lineBegin, lineEnd) of the labelling into `planes`
/// -- the staging pass the engine shards separately from the kernel pass.
void bitsliceStageLinesD(const TorusD& torus, std::span<const int> labels,
                         LabelPlanes& planes, long long lineBegin,
                         long long lineEnd);

/// Violations of the bit-sliced kernel on lines [lineBegin, lineEnd).
/// d = 2 tables route through bitsliceViolationRows on the raw labels
/// (planes unused); d >= 3 reads the staged planes. Counts are
/// bit-identical to tableViolationLinesD.
std::int64_t bitsliceViolationLinesD(const LclTableD& table,
                                     const TorusD& torus,
                                     const LabelPlanes& planes,
                                     const int* labels, long long lineBegin,
                                     long long lineEnd, bool stopAtFirst);

/// Violations of the functional fallback on nodes [vBegin, vEnd).
std::int64_t functionalViolationRangeD(const TorusD& torus,
                                       const GridLclD& lcl,
                                       std::span<const int> labels,
                                       long long vBegin, long long vEnd,
                                       bool stopAtFirst);

}  // namespace verifier_detail

/// Renders a labelling as an ASCII grid (row y = n-1 on top, matching the
/// north-up orientation), using the problem's label names.
std::string renderLabelling(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels);

}  // namespace lclgrid
