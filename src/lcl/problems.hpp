// The concrete LCL problems studied in the paper (Sections 1.3, 8-11), all
// expressed in radius-1 cross form on the oriented torus.
//
// Edge labellings are encoded node-locally: every node owns its *east* and
// *north* incident edges. An edge-colouring label is the pair
// (colour of E-edge, colour of N-edge); an orientation label is the pair of
// direction bits (E-edge points east?, N-edge points north?). A node's four
// incident edges are then: its own E/N components plus the E component of
// its western neighbour and the N component of its southern neighbour.
#pragma once

#include <set>

#include "lcl/grid_lcl.hpp"

namespace lclgrid::problems {

/// Proper k-colouring of the nodes (k >= 1). Global for k <= 3 on grids,
/// Theta(log* n) for k >= 4 (Theorems 4 and 9).
GridLcl vertexColouring(int k);

/// Maximal independent set: 1-labelled nodes are independent, and every
/// 0-labelled node has a 1-labelled neighbour.
GridLcl maximalIndependentSet();

/// Independent set (no maximality): trivially solvable by all-0.
GridLcl independentSet();

/// Maximal matching. Labels: 0 = unmatched, 1..4 = matched through the
/// N/E/S/W incident edge (pointing at the partner). Matched pairs must
/// point at each other; no two unmatched nodes may be adjacent.
GridLcl maximalMatching();

// --- edge-labelled problems (labels are (E-edge, N-edge) pairs) -----------

/// sigma = k*k; label l = eColour(l) * k + ... see helpers below.
GridLcl edgeColouring(int k);
int edgeColourOfE(int label, int k);
int edgeColourOfN(int label, int k);
int edgeLabelFrom(int eColour, int nColour, int k);

/// X-orientation (Section 11): orient every edge such that each node's
/// in-degree lies in X, X subset of {0,...,4}. sigma = 4: bit 0 set means
/// the node's E-edge points east (away from the node), bit 1 set means the
/// node's N-edge points north (away from the node).
GridLcl orientation(const std::set<int>& allowedInDegrees);
bool orientationEOut(int label);
bool orientationNOut(int label);
int orientationLabel(bool eOut, bool nOut);
/// In-degree of a node given its own label and its west/south neighbours'.
int orientationInDegree(int centre, int south, int west);

/// Name helper: "{0,1,3}" etc.
std::string orientationSetName(const std::set<int>& x);

/// "Forbidden pattern" toy problem used in tests: no two horizontally
/// adjacent 1s (and no constraint otherwise); trivially solvable.
GridLcl noHorizontalOnePair();

/// Weak variant of colouring used in tests: node label must differ from at
/// least `mismatches` of its 4 neighbours.
GridLcl weakColouring(int k, int mismatches);

}  // namespace lclgrid::problems
