// SAT-backed global solving of an LCL on a concrete torus. This plays three
// roles in the reproduction:
//  * the brute-force Theta(n) baseline ("gather everything and solve") that
//    is optimal for global problems (Section 7),
//  * a feasibility oracle (e.g. Theorem 21: 2d-edge-colouring is infeasible
//    for odd n),
//  * a generator of feasible labellings for the lower-bound invariant
//    experiments of Section 9 (randomised solutions via seed-dependent
//    symmetry-breaking assumptions).
//
// Thread-safety: solveGlobally is re-entrant (a fresh sat::Solver and CNF
// per call; the problem is only read through GridLcl's const interface),
// so feasibility probes run concurrently on engine pool threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/grid_lcl.hpp"

namespace lclgrid {

struct GlobalSolveResult {
  bool feasible = false;
  /// False when the conflict budget ran out before the solver decided;
  /// `feasible` is then meaningless.
  bool decided = true;
  std::vector<int> labels;          // set iff feasible
  std::int64_t satConflicts = 0;
};

/// Decides feasibility of the LCL on the n x n torus and returns a solution
/// if one exists. `seed` perturbs the search (variable order via decision
/// polarity clauses) so different seeds can produce different solutions;
/// seed 0 keeps the canonical deterministic search.
GlobalSolveResult solveGlobally(const Torus2D& torus, const GridLcl& lcl,
                                std::uint64_t seed = 0,
                                std::int64_t conflictBudget = -1);

/// The round cost of the brute-force LOCAL algorithm on an n x n torus:
/// gathering the whole (toroidal) graph takes diameter = n rounds
/// (2 * floor(n/2) hops in the worst case), after which the computation is
/// local. Reported by benches next to synthesized algorithms' rounds.
int bruteForceRounds(int n);

}  // namespace lclgrid
