// SAT-backed global solving of an LCL on a concrete torus. This plays three
// roles in the reproduction:
//  * the brute-force Theta(n) baseline ("gather everything and solve") that
//    is optimal for global problems (Section 7),
//  * a feasibility oracle (e.g. Theorem 21: 2d-edge-colouring is infeasible
//    for odd n),
//  * a generator of feasible labellings for the lower-bound invariant
//    experiments of Section 9 (randomised solutions via seed-dependent
//    symmetry-breaking assumptions).
//
// Thread-safety: solveGlobally is re-entrant (a fresh sat::Solver and CNF
// per call; the problem is only read through GridLcl's const interface),
// so feasibility probes run concurrently on engine pool threads. A
// FeasibilityProber wraps one live sat::Solver and follows its contract:
// single-threaded per instance, distinct instances fully independent (the
// oracle constructs one per classification task).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/grid_lcl.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace lclgrid {

struct GlobalSolveResult {
  bool feasible = false;
  /// False when the conflict budget ran out before the solver decided;
  /// `feasible` is then meaningless.
  bool decided = true;
  std::vector<int> labels;          // set iff feasible
  std::int64_t satConflicts = 0;
};

/// Decides feasibility of the LCL on the n x n torus and returns a solution
/// if one exists. `seed` perturbs the search (a random node is forced to
/// each label in random order and the first satisfiable branch wins) so
/// different seeds can produce different solutions; seed 0 keeps the
/// canonical deterministic search. The seeded branch enumeration runs on
/// one live solver via assumptions -- the CSP is encoded once and learnt
/// clauses carry across branches -- instead of re-encoding per branch.
GlobalSolveResult solveGlobally(const Torus2D& torus, const GridLcl& lcl,
                                std::uint64_t seed = 0,
                                std::int64_t conflictBudget = -1);

/// The incremental feasibility prober behind the oracle's probe ladder: one
/// live solver holding the torus CSP of every probed size as an
/// assumption-gated clause group (sat/cnf.hpp ClauseGroup). Each size is
/// encoded once; probing it solves under its activation literal, and
/// re-probing (e.g. with a larger conflict budget after an Unknown) resumes
/// from everything the solver already learnt about that size.
class FeasibilityProber {
 public:
  /// Keeps a reference to `lcl`; the problem must outlive the prober.
  explicit FeasibilityProber(const GridLcl& lcl);

  /// Decides feasibility on the n x n torus; semantics (including budget
  /// handling) match solveGlobally(torus, lcl, 0, conflictBudget), with
  /// satConflicts counting only the conflicts this call added.
  GlobalSolveResult probe(int n, std::int64_t conflictBudget = -1);

  const sat::Solver& solver() const { return solver_; }

 private:
  struct SizeBlock {
    int n = 0;
    sat::ClauseGroup group;
    std::vector<sat::DomainVar> label;
  };
  SizeBlock& blockFor(int n);

  const GridLcl& lcl_;
  sat::Solver solver_;
  std::vector<SizeBlock> blocks_;
};

/// The round cost of the brute-force LOCAL algorithm on an n x n torus:
/// gathering the whole (toroidal) graph takes diameter = n rounds
/// (2 * floor(n/2) hops in the worst case), after which the computation is
/// local. Reported by benches next to synthesized algorithms' rounds.
int bruteForceRounds(int n);

}  // namespace lclgrid
