#include "lcl/problems.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace lclgrid::problems {

GridLcl vertexColouring(int k) {
  if (k < 1) throw std::invalid_argument("vertexColouring: k must be >= 1");
  GridLcl lcl(
      "vertex-" + std::to_string(k) + "-colouring", k, kDepAll,
      [](int c, int n, int e, int s, int w) {
        return c != n && c != e && c != s && c != w;
      });
  return lcl;
}

GridLcl maximalIndependentSet() {
  return GridLcl("maximal-independent-set", 2, kDepAll,
                 [](int c, int n, int e, int s, int w) {
                   if (c == 1) return n == 0 && e == 0 && s == 0 && w == 0;
                   return n + e + s + w >= 1;
                 });
}

GridLcl independentSet() {
  return GridLcl("independent-set", 2, kDepAll,
                 [](int c, int n, int e, int s, int w) {
                   if (c == 1) return n == 0 && e == 0 && s == 0 && w == 0;
                   return true;
                 });
}

GridLcl maximalMatching() {
  // 0 = unmatched, 1 = matched north, 2 = east, 3 = south, 4 = west.
  GridLcl lcl("maximal-matching", 5, kDepAll,
              [](int c, int n, int e, int s, int w) {
                if (c == 1 && n != 3) return false;  // partner must point back
                if (c == 2 && e != 4) return false;
                if (c == 3 && s != 1) return false;
                if (c == 4 && w != 2) return false;
                if (c == 0) {
                  // Maximality: no unmatched neighbour.
                  return n != 0 && e != 0 && s != 0 && w != 0;
                }
                return true;
              });
  lcl.setLabelNames({"-", "N", "E", "S", "W"});
  return lcl;
}

int edgeColourOfE(int label, int k) { return label % k; }
int edgeColourOfN(int label, int k) { return label / k; }
int edgeLabelFrom(int eColour, int nColour, int k) {
  return nColour * k + eColour;
}

GridLcl edgeColouring(int k) {
  if (k < 1) throw std::invalid_argument("edgeColouring: k must be >= 1");
  // The four edges incident to a node: own E, own N, west neighbour's E,
  // south neighbour's N. All four must receive distinct colours.
  GridLcl lcl(
      "edge-" + std::to_string(k) + "-colouring", k * k,
      static_cast<std::uint8_t>(kDepS | kDepW),
      [k](int c, int /*n*/, int /*e*/, int s, int w) {
        int ownE = edgeColourOfE(c, k);
        int ownN = edgeColourOfN(c, k);
        int westE = edgeColourOfE(w, k);
        int southN = edgeColourOfN(s, k);
        return ownE != ownN && ownE != westE && ownE != southN &&
               ownN != westE && ownN != southN && westE != southN;
      });
  return lcl;
}

bool orientationEOut(int label) { return (label & 1) != 0; }
bool orientationNOut(int label) { return (label & 2) != 0; }
int orientationLabel(bool eOut, bool nOut) {
  return (eOut ? 1 : 0) | (nOut ? 2 : 0);
}

int orientationInDegree(int centre, int south, int west) {
  int inDegree = 0;
  if (!orientationEOut(centre)) ++inDegree;  // E-edge points inwards
  if (!orientationNOut(centre)) ++inDegree;  // N-edge points inwards
  if (orientationEOut(west)) ++inDegree;     // west neighbour's E-edge enters
  if (orientationNOut(south)) ++inDegree;    // south neighbour's N-edge enters
  return inDegree;
}

std::string orientationSetName(const std::set<int>& x) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int v : x) {
    if (!first) os << ",";
    os << v;
    first = false;
  }
  os << "}";
  return os.str();
}

GridLcl orientation(const std::set<int>& allowedInDegrees) {
  for (int v : allowedInDegrees) {
    if (v < 0 || v > 4) {
      throw std::invalid_argument("orientation: in-degrees must be in 0..4");
    }
  }
  std::array<bool, 5> allowed{};
  for (int v : allowedInDegrees) allowed[static_cast<std::size_t>(v)] = true;
  GridLcl lcl("orientation-" + orientationSetName(allowedInDegrees), 4,
              static_cast<std::uint8_t>(kDepS | kDepW),
              [allowed](int c, int /*n*/, int /*e*/, int s, int w) {
                return allowed[static_cast<std::size_t>(
                    orientationInDegree(c, s, w))];
              });
  lcl.setLabelNames({"<v", ">v", "<^", ">^"});
  return lcl;
}

GridLcl noHorizontalOnePair() {
  return GridLcl("no-horizontal-1-pair", 2,
                 static_cast<std::uint8_t>(kDepE | kDepW),
                 [](int c, int /*n*/, int e, int /*s*/, int w) {
                   return !(c == 1 && (e == 1 || w == 1));
                 });
}

GridLcl weakColouring(int k, int mismatches) {
  if (k < 1) throw std::invalid_argument("weakColouring: k must be >= 1");
  if (mismatches < 0 || mismatches > 4) {
    throw std::invalid_argument("weakColouring: mismatches must be in 0..4");
  }
  return GridLcl("weak-" + std::to_string(k) + "-colouring-" +
                     std::to_string(mismatches),
                 k, kDepAll,
                 [mismatches](int c, int n, int e, int s, int w) {
                   int differing = (c != n) + (c != e) + (c != s) + (c != w);
                   return differing >= mismatches;
                 });
}

}  // namespace lclgrid::problems
