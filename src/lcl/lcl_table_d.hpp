// Compiled constraint tables for radius-1 LCLs on the d-dimensional torus.
//
// The paper states its Sections 3 and 6 results for oriented toroidal grids
// of any dimension d: a radius-1 node constraint over alphabet [sigma] is a
// finite relation on sigma^(2d+1) tuples (centre plus one neighbour per
// signed axis direction). LclTableD is the d-dimensional generalisation of
// LclTable (lcl/lcl_table.hpp): the relation is compiled once into a dense
// bit-packed truth table with one uint64_t row of allowed-centre bits per
// assignment of the *dependent* neighbour slots (irrelevant slots are
// squeezed out via zero strides), so a feasibility check is one indexed
// load plus a bit test on any dimension.
//
// Neighbour slot convention: slot 2a is the neighbour at +1 along axis a,
// slot 2a+1 the neighbour at -1, for a in [0, dims). On the 2-dimensional
// torus (TorusD axis 0 = x, axis 1 = y) this makes the slots [E, W, N, S].
//
// d = 2 is special-cased to *delegate*: a 2-dimensional LclTableD compiles
// an ordinary LclTable and views its packed rows directly (same memory,
// same strides, remapped to the slot order above), so there is exactly one
// 2D code path in the library and the existing 2D fast path cannot regress.
// as2d() exposes the delegated table; the TorusD verifier routes d = 2
// through the proven 2D row kernel.
//
// Derived data, as in 2D: per-axis pair projections and the
// edge-decomposability verdict, the trivial (constant-labelling) label, a
// content fingerprint, and disjointUnion / remap composition plus
// forEachForbidden / forEachAllowed row iteration so CNF generators and
// the global solver work unchanged in any dimension.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "lcl/lcl_table.hpp"

namespace lclgrid {

class LclTableD {
 public:
  /// Centre labels are bits of a uint64_t row, so alphabets are capped.
  static constexpr int kMaxSigma = LclTable::kMaxSigma;
  /// Row-count cap shared with the 2D table (64 MiB of rows).
  static constexpr std::size_t kMaxRows = LclTable::kMaxRows;
  /// Dimension cap: the dependency mask is one bit per signed direction.
  static constexpr int kMaxDims = 16;

  /// nbrs has 2*dims entries in the slot order above.
  using Predicate = std::function<bool(int c, std::span<const int> nbrs)>;

  /// All 2*dims slots relevant.
  static std::uint32_t fullDeps(int dims);

  /// True iff a (dims, sigma, deps) relation fits the compiled form.
  static bool compilable(int dims, int sigma, std::uint32_t deps);

  /// Evaluates `ok` once per dependent tuple and packs the truth table.
  /// For dims == 2 this compiles (and delegates to) an LclTable.
  static LclTableD compile(int dims, int sigma, std::uint32_t deps,
                           const Predicate& ok);

  /// Wraps an existing 2D table as a 2-dimensional LclTableD (shared rows,
  /// no copy). The inverse direction of the d = 2 delegation.
  static LclTableD fromTable2D(LclTable table);

  /// Block-diagonal composition (the Section 6 disjoint union), dimensions
  /// must match; every slot becomes relevant, as in 2D.
  static LclTableD disjointUnion(const LclTableD& p, const LclTableD& q);

  /// Alphabet pushforward: `toOld[fresh]` is the p-label the fresh label
  /// stands for (relabel / restriction; rows gathered, bits permuted).
  static LclTableD remap(const LclTableD& p, std::span<const int> toOld);

  int dims() const { return dims_; }
  int sigma() const { return sigma_; }
  std::uint32_t deps() const { return deps_; }
  /// Low-sigma bits set: the "every centre label allowed" row.
  std::uint64_t fullRow() const { return fullRow_; }

  /// The delegated 2D table when dims() == 2, nullptr otherwise. The
  /// verifier routes d = 2 through the existing 2D row kernel via this.
  const LclTable* as2d() const { return table2d_.get(); }

  /// Row index of a neighbourhood given all 2*dims neighbour labels (slot
  /// order above); irrelevant slots have stride 0 and are ignored.
  std::size_t rowIndex(const int* nbrs) const {
    std::size_t index = 0;
    for (int slot = 0; slot < 2 * dims_; ++slot) {
      index += slotStrides_[static_cast<std::size_t>(slot)] *
               static_cast<std::size_t>(nbrs[slot]);
    }
    return index;
  }

  /// Bitmask of allowed centre labels for a neighbourhood (the hot path).
  std::uint64_t centreMask(const int* nbrs) const {
    return rowData()[rowIndex(nbrs)];
  }

  bool allows(int c, std::span<const int> nbrs) const {
    return (centreMask(nbrs.data()) >> c) & 1u;
  }

  std::size_t rowCount() const {
    return table2d_ ? table2d_->rowCount() : rowsOwned_.size();
  }

  /// Raw packed rows / per-slot strides for the verifier kernels (2*dims
  /// stride entries). For dims == 2 these view the delegated LclTable's
  /// storage -- the d = 2 delegation shares the 2D rows, it does not copy
  /// them. Not part of the stable API.
  const std::uint64_t* rowData() const {
    return table2d_ ? table2d_->rowData() : rowsOwned_.data();
  }
  const std::size_t* slotStrides() const { return slotStrides_.data(); }

  /// Visits every forbidden tuple once, irrelevant slots pinned to 0
  /// (mirroring the CNF generators' convention). f(c, span nbrs).
  template <typename F>
  void forEachForbidden(F&& f) const {
    visitRows([&](std::uint64_t row, std::span<const int> nbrs) {
      if (row == fullRow_) return;
      for (int c = 0; c < sigma_; ++c) {
        if (!((row >> c) & 1u)) f(c, nbrs);
      }
    });
  }

  /// Visits every allowed tuple once (irrelevant slots pinned to 0).
  template <typename F>
  void forEachAllowed(F&& f) const {
    visitRows([&](std::uint64_t row, std::span<const int> nbrs) {
      if (row == 0) return;
      for (int c = 0; c < sigma_; ++c) {
        if ((row >> c) & 1u) f(c, nbrs);
      }
    });
  }

  /// Number of forbidden tuples over the dependent slots only.
  long long forbiddenRowCount() const;

  /// The label of a feasible constant labelling, or -1.
  int trivialLabel() const { return trivialLabel_; }

  /// Content fingerprint: FNV-1a over (dims, sigma, deps, rows). Tables
  /// with equal content hash equal whichever construction path built them;
  /// the deps mask is part of the content, as in 2D.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Exact (dims, sigma, deps, rows) equality -- what fingerprint()
  /// approximates.
  bool sameContent(const LclTableD& other) const;

  /// The bit-sliced evaluation plan (lcl/label_planes.hpp): one pair
  /// network per axis when the relation is edge-decomposable with
  /// sigma <= 8 and small enough pair sets, nullptr otherwise. d = 2
  /// tables keep this null -- the delegated LclTable's plan (reached via
  /// as2d()->bitslicePlan()) covers them, so there is exactly one 2D
  /// bit-sliced code path. Derived data, not part of fingerprint().
  const bitslice::BitslicePlanD* bitslicePlanD() const {
    return bitslicePlanD_.get();
  }

  /// True iff the relation factorises into per-axis pair constraints:
  /// ok(c, nbrs) == /\_a P_a(nbrs[2a+1], c) && P_a(c, nbrs[2a]).
  bool edgeDecomposable() const { return edgeDecomposable_; }
  /// Pair projection along `axis` (maximal candidates; exact iff
  /// edgeDecomposable()): lower at coordinate x, upper at x+1.
  bool pairOk(int axis, int lower, int upper) const;

 private:
  LclTableD() = default;
  /// Allocates generic (non-delegated) storage for (dims, sigma, deps).
  LclTableD(int dims, int sigma, std::uint32_t deps);
  /// Builds the d = 2 delegation around an already-compiled 2D table.
  explicit LclTableD(std::shared_ptr<const LclTable> table2d,
                     std::uint32_t deps);

  bool slotRelevant(int slot) const { return (deps_ >> slot) & 1u; }

  /// Calls f(row, nbrs) for every stored row in storage order, irrelevant
  /// slots pinned to 0. Works on both the generic and delegated layouts
  /// (the odometer advances dependent slots in stride order).
  /// The odometer ticks dependent slots in ascending stride order, whose
  /// strides form a complete mixed radix, so it enumerates row indices
  /// 0, 1, 2, ... exactly -- the loop counter IS the row index.
  template <typename F>
  void visitRows(F&& f) const {
    std::vector<int> nbrs(static_cast<std::size_t>(2 * dims_), 0);
    std::span<const int> view(nbrs);
    const std::uint64_t* rows = rowData();
    const std::size_t count = rowCount();
    for (std::size_t index = 0; index < count; ++index) {
      f(rows[index], view);
      advanceOdometer(nbrs);
    }
  }

  /// Advances the dependent slots of the odometer one row in ascending
  /// stride order (the smallest-stride slot ticks fastest).
  void advanceOdometer(std::vector<int>& nbrs) const;

  /// Computes projections, decomposability, the trivial label and the
  /// fingerprint from the packed rows (every generic construction path).
  void finalise();

  int dims_ = 0;
  int sigma_ = 0;
  std::uint32_t deps_ = 0;
  std::uint64_t fullRow_ = 0;
  std::vector<std::size_t> slotStrides_;  // 2*dims entries, 0 = irrelevant
  std::vector<int> slotOrder_;            // dependent slots, stride ascending
  std::vector<std::uint64_t> rowsOwned_;  // generic storage (empty at d = 2)
  std::shared_ptr<const LclTable> table2d_;  // d = 2 delegation target

  // Derived at compile time.
  std::vector<std::uint8_t> pairs_;  // dims x sigma x sigma, [axis][lo][up]
  std::shared_ptr<const bitslice::BitslicePlanD> bitslicePlanD_;
  bool edgeDecomposable_ = false;
  int trivialLabel_ = -1;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace lclgrid
