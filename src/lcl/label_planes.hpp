// Bit-sliced labellings and the boolean evaluation plans that run on them.
//
// The compiled-table verifier (lcl/verifier.hpp) pays one table-row load and
// one bit test per node. For the small alphabets that dominate the paper's
// registry (sigma <= 8) a node's whole radius-1 check fits in a handful of
// bits, so a labelling transposed into ceil(log2(sigma)) *bit-planes* lets
// one uint64_t operation decide 64 nodes at once -- the transposed-data
// trick of bitwise SAT/BDD kernels. This header holds the three pieces:
//
//  * LabelPlanes -- a torus labelling transposed into planes: plane b of
//    grid row (or axis-0 line) r is a packed n-bit vector whose bit x is
//    bit b of the label at position x of that row. Conversion to/from the
//    flat int labelling, plus the cyclic word-shift helpers that realise
//    the +-x neighbour within a row.
//  * PairNetwork -- a plane-level AND/XOR/OR network deciding a sigma x
//    sigma pair predicate for 64 (lo, hi) pairs per word-op. Synthesised
//    from whichever of the allowed / forbidden pair sets is smaller
//    (sum-of-minterms, complemented when the forbidden side is used).
//  * BitslicePlan / BitslicePlanD -- the per-problem plan attached to a
//    compiled LclTable / LclTableD: pair networks per direction for
//    edge-decomposable tables, or a nibble-indexed LUT over packed 4-bit
//    label words for non-decomposable tables with sigma <= 4.
//
// The kernels that consume these live in lcl/verifier.cpp (2D rolling-row
// kernel) and lcl/verifier_d.cpp (TorusD line kernel); selection between
// the bit-sliced, row-pointer and functional tiers is automatic -- see
// docs/perf.md. LCLGRID_BITSLICE=0 (or bitslice::setEnabled(false)) is the
// escape hatch back to the row-pointer kernel.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lclgrid {

namespace bitslice {

/// Process-wide kernel gate. Initialised once from the LCLGRID_BITSLICE
/// environment variable ("0" disables, anything else enables); benches and
/// tests override it to pin a specific kernel. Thread-safe.
bool enabled();
void setEnabled(bool value);

/// SIMD width ladder of the bit-sliced machinery: the row transpose and
/// the word kernels in lcl/verifier.cpp runtime-dispatch up to this tier.
/// kScalar is the portable SSE2/uint64_t baseline every path falls back
/// to; the wider tiers are clones of the same word loops, so every tier
/// produces bit-identical counts.
enum class SimdTier {
  kScalar = 0,  // no runtime-dispatched wide kernels
  kAvx2 = 1,
  kAvx512 = 2,
};

/// The effective tier: min(cap, what this CPU and build support). The cap
/// initialises once from LCLGRID_SIMD ("0" scalar, "1" AVX2, anything
/// else uncapped); setSimdTier overrides it (tests force the fallback
/// paths with it). Thread-safe, same publication scheme as enabled().
SimdTier simdTier();
void setSimdTier(SimdTier cap);

/// Host capability probes (independent of the cap): true when the build
/// can emit the tier's kernels and the CPU executes them. avx512Available
/// requires the F/BW/VBMI/VPOPCNTDQ subsets the verifier kernels use.
bool avx2Available();
bool avx512Available();

/// Planes needed for labels in [0, sigma): max(1, bit_width(sigma - 1)).
int planeCount(int sigma);

/// Packed words holding one n-bit row: ceil(n / 64).
inline std::size_t wordsPerRow(int n) {
  return (static_cast<std::size_t>(n) + 63) / 64;
}

/// Mask of the valid bits of a row's last word (all-ones when 64 | n).
inline std::uint64_t rowTailMask(int n) {
  const int rem = n % 64;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

/// Transposes one row of n labels into `planes` consecutive plane words
/// (plane-major: plane b occupies words [b*W, (b+1)*W)). Bits >= n of every
/// plane word are zero -- the invariant the shift helpers and kernels rely
/// on. Labels must lie in [0, 2^planes).
void transposeRow(const int* labels, int n, int planes, std::uint64_t* out);

/// Inverse of transposeRow: label x = the concatenation of its plane bits.
void untransposeRow(const std::uint64_t* planes, int n, int planeCount,
                    int* labels);

/// dst bit x = src bit (x + 1 mod n): the +x ("east") neighbour's bit
/// stream. src and dst are wordsPerRow(n) words; src bits >= n must be
/// zero, and dst keeps that invariant. dst must not alias src.
void shiftUpCyclic(const std::uint64_t* src, std::uint64_t* dst, int n);

/// dst bit x = src bit (x - 1 mod n): the -x ("west") neighbour's stream.
void shiftDownCyclic(const std::uint64_t* src, std::uint64_t* dst, int n);

/// A sigma x sigma pair predicate compiled to a plane-level boolean
/// network: eval populates out[w] with bit x = P(lo_x, hi_x) for the 64
/// pairs of word w, given the plane-major word buffers of the lo and hi
/// label streams. Sum-of-minterms over the smaller of the allowed /
/// forbidden pair sets; `complement` marks the forbidden-side form.
struct PairNetwork {
  /// One minterm: AND over all planes of (plane XNOR the term's bit), for
  /// the lo and hi streams. xorMask[b] is 0 when the term wants bit b set
  /// and ~0 when it wants it clear, so a literal is one XOR + one AND.
  struct Term {
    std::array<std::uint64_t, 3> loXor{};
    std::array<std::uint64_t, 3> hiXor{};
  };

  int planes = 0;
  bool complement = false;  // terms enumerate the *forbidden* pairs
  /// Shape fast path: the predicate is exactly lo != hi on [0, sigma)^2
  /// (colouring-style constraints), so eval is one XOR + OR per plane
  /// instead of the minterm loop. terms still hold the generic form.
  bool notEqual = false;
  std::vector<Term> terms;

  /// lo/hi are plane-major (plane b at [b*words, (b+1)*words)). Bits >= n
  /// of the output are garbage; callers mask with rowTailMask.
  void eval(const std::uint64_t* lo, const std::uint64_t* hi,
            std::size_t words, std::uint64_t* out) const;
};

/// Compiles `ok(lo, hi)` over [0, sigma)^2 into a PairNetwork. sigma must
/// lie in [1, 8] (at most 3 planes per side).
PairNetwork compilePairNetwork(int sigma,
                               const std::function<bool(int, int)>& ok);

/// Word-op budget guard: a network with more terms than this is slower
/// than the row-pointer kernel it replaces, so plan synthesis gives up.
inline constexpr int kMaxPairTerms = 24;

/// Automatic-selection floor: below this many nodes the kernel's per-call
/// setup (scratch buffers, row staging) outweighs the word-parallel win
/// and the verifier stays on the row-pointer kernel. The kernels
/// themselves handle any size -- the property tests drive them directly
/// on tiny odd grids through verifier_detail.
inline constexpr long long kMinNodesForBitslice = 256;

/// The 1024-bit validity LUT of the nibble tier, stored in the layout the
/// kernel's inner loop reads: bit w of `byWest[c | n<<2 | e<<4 | s<<6]`
/// is set iff the table allows the tuple with west label w -- one byte
/// extraction per node keys the whole neighbourhood. Built for sigma <= 4
/// so every label fits two bits of a packed lane.
struct NibbleLut {
  std::array<std::uint8_t, 256> byWest{};
};
NibbleLut compileNibbleLut(
    int sigma, const std::function<bool(int c, int n, int e, int s, int w)>& ok);

/// The per-problem plan attached to a compiled LclTable (2D).
struct BitslicePlan {
  enum class Kind {
    kPairPlanes,  // edge-decomposable: h/v pair networks over bit-planes
    kNibbleLut,   // sigma <= 4 fallback: LUT over packed 4-bit labels
  };
  Kind kind = Kind::kPairPlanes;
  int planes = 0;  // bit-planes per label (kPairPlanes only)
  PairNetwork h;   // horizontalOk(west, east)
  PairNetwork v;   // verticalOk(south, north)
  NibbleLut nibble{};
};

/// The per-problem plan attached to a compiled LclTableD (d >= 3; a d = 2
/// table reaches the 2D plan through as2d()). Decomposable-only: one pair
/// network per axis, pairOk(axis, lower, upper).
struct BitslicePlanD {
  int planes = 0;
  std::vector<PairNetwork> axes;
};

}  // namespace bitslice

/// A labelling transposed into bit-planes, row by row: `rows` grid rows
/// (Torus2D) or axis-0 lines (TorusD) of `n` labels each, `planes` planes
/// per row. Storage is row-major, plane-major within a row:
/// word w of plane b of row r lives at [(r * planes + b) * W + w].
class LabelPlanes {
 public:
  LabelPlanes() = default;
  LabelPlanes(int n, long long rows, int planes);

  int n() const { return n_; }
  long long rows() const { return rows_; }
  int planes() const { return planes_; }
  std::size_t wordsPerRow() const { return words_; }

  /// Plane-major word buffer of one row (planes() * wordsPerRow() words).
  std::uint64_t* row(long long r) {
    return words_ == 0 ? nullptr
                       : data_.data() + static_cast<std::size_t>(r) *
                                            planes_ * words_;
  }
  const std::uint64_t* row(long long r) const {
    return words_ == 0 ? nullptr
                       : data_.data() + static_cast<std::size_t>(r) *
                                            planes_ * words_;
  }

  /// Transposes rows [rowBegin, rowEnd) of a flat row-major labelling
  /// (labels.size() == rows() * n()) into this buffer. Ranges let the
  /// engine shard the transposition across threads.
  void setRows(std::span<const int> labels, long long rowBegin,
               long long rowEnd);

  /// Inverse transposition of the whole buffer (out.size() == rows()*n()).
  void toLabels(std::span<int> out) const;

 private:
  int n_ = 0;
  long long rows_ = 0;
  int planes_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace lclgrid
