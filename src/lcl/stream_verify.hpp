// The fourth verifier tier: out-of-core streaming verification of labellings
// read from disk (docs/perf.md). A compact on-disk format holds one torus
// labelling -- a fixed header (magic, sigma, dims, side) followed by the
// row-major int32 label payload, byte-identical to the in-core layout -- so
// a memory-mapped file *is* a label buffer and the existing row/line kernels
// run on it zero-copy. The streaming entry points walk the mapping in slabs
// of axis-0 rows with a rolling window:
//
//  * the kernel reads rows [slab - 1, slab + 1] (2D) or the neighbour-line
//    window of the outer axes (d >= 3);
//  * a validation frontier runs one wrap window ahead of the kernel, so an
//    out-of-range label is discovered before it can index a table row
//    (falling back to the functional tier, exactly like the in-core engine);
//  * pages behind the window are dropped (madvise) as the cursor advances,
//    with the wrap stash -- the first wrap window of rows, needed again by
//    the final rows' cyclic neighbours -- pinned resident;
//
// so a torus with >= 10^9 nodes verifies in one pass with O(rows) resident
// memory and no full-grid allocation. Counts are bit-identical to the
// in-core engine on every tier and thread count: the slabs run the exact
// verifier_detail slices the serial and sharded in-core paths run.
//
// Serial entry points live in stream_verify.cpp; the overloads taking
// engine::EngineOptions shard each slab through the work-stealing pool
// (chunk-ordered combine) and live in src/engine/parallel_verifier.cpp --
// link lclgrid_engine (or the umbrella target) to call them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "engine/engine_options.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "support/mmap_file.hpp"

namespace lclgrid {

namespace stream_format {

/// "LCLLABv1": 8 magic bytes, then three little-endian uint32 fields
/// (sigma, dims, side) and a reserved zero word, then size() int32
/// little-endian labels, row-major with axis 0 fastest -- the in-core
/// layout of Torus2D (dims = 2) and TorusD labellings.
inline constexpr unsigned char kMagic[8] = {'L', 'C', 'L', 'L',
                                            'A', 'B', 'v', '1'};
inline constexpr std::size_t kHeaderBytes = 24;

}  // namespace stream_format

/// Incremental writer for the on-disk labelling format: feed labels in any
/// chunking (typically one row at a time -- the point is writing a file
/// larger than RAM without a full-grid buffer). close() validates that
/// exactly side^dims labels were written and flushes; the destructor closes
/// without the completeness check (so an abandoned writer cannot throw).
class StreamLabellingWriter {
 public:
  StreamLabellingWriter(const std::string& path, int sigma, int dims, int n);
  ~StreamLabellingWriter();
  StreamLabellingWriter(const StreamLabellingWriter&) = delete;
  StreamLabellingWriter& operator=(const StreamLabellingWriter&) = delete;

  void appendLabels(std::span<const int> labels);
  void close();
  long long written() const { return written_; }

 private:
  std::string path_;
  void* file_ = nullptr;  // std::FILE*, kept out of the header
  long long expected_ = 0;
  long long written_ = 0;
  bool closed_ = false;
};

/// One-call writer for in-memory labellings (tests, small benches).
void writeLabellingFile(const std::string& path, int sigma, int dims, int n,
                        std::span<const int> labels);

/// A labelling memory-mapped from the on-disk format. Construction
/// validates the header and the payload size (std::runtime_error on bad
/// magic / malformed fields / truncated payload); labels() is the mapped
/// int32 payload, directly consumable by the in-core kernels.
class StreamLabelling {
 public:
  explicit StreamLabelling(const std::string& path);

  int sigma() const { return sigma_; }
  int dims() const { return dims_; }
  int n() const { return n_; }
  /// Total nodes: n()^dims().
  long long size() const { return size_; }
  /// Axis-0 rows (2D grid rows / TorusD lines): size() / n().
  long long lines() const { return size_ / n_; }
  const int* labels() const;

  /// Drops the resident pages of payload rows [rowBegin, rowEnd) --
  /// advisory (MmapFile::dropRange); the streaming pass calls this behind
  /// its cursor.
  void dropRows(long long rowBegin, long long rowEnd) const;

  /// Content fingerprint for checkpoint binding: FNV-1a over the header
  /// fields, the payload size, and the first/last 4 KiB of the payload.
  /// Deliberately O(1) in the file size -- a resumable pass must not
  /// re-read a multi-GiB payload just to identify it -- so it detects a
  /// swapped or re-generated file, not a single flipped label in the
  /// middle.
  std::uint64_t fingerprint() const;

 private:
  support::MmapFile file_;
  int sigma_ = 0;
  int dims_ = 0;
  int n_ = 0;
  long long size_ = 0;
};

/// Slab geometry of a streaming pass. rows == 0 picks a slab of ~8 MiB of
/// payload (at least one row); dropBehind toggles the madvise reclamation
/// (off: the page cache decides, resident set may grow to the file size).
struct StreamWindow {
  long long rows = 0;
  bool dropBehind = true;
  /// Crash-safe resume (count passes only -- verify early-exits and is
  /// cheap to rerun): when non-empty, the pass maintains a sidecar
  /// checkpoint file at this path, written atomically (tmp + fsync +
  /// rename) at slab boundaries and removed on completion. A pass finding
  /// a checkpoint whose labelling and problem fingerprints match resumes
  /// from the recorded cursor; counts are bit-identical to an
  /// uninterrupted run because totals are exact int64 sums over disjoint
  /// row ranges (docs/robustness.md).
  std::string checkpointPath;
  /// Checkpoint cadence: write every this many slabs (>= 1).
  long long checkpointEverySlabs = 1;
};

/// The sidecar checkpoint record of a resumable streaming count pass
/// ("LCLCKPv1", 64 bytes, docs/robustness.md). Exposed for tests and
/// recovery tooling; the pass reads and writes it internally.
struct StreamCheckpoint {
  /// False: the table-tier walk (frontier meaningful). True: the
  /// functional fallback walk (a restart after an out-of-range label).
  bool functionalPhase = false;
  std::uint64_t labellingFingerprint = 0;
  std::uint64_t problemFingerprint = 0;
  /// First row the resumed pass still has to process.
  long long nextRow = 0;
  /// Validation frontier (table phase): rows [0, frontier) are in-range.
  long long frontier = 0;
  /// Violations accumulated over rows [0, nextRow).
  std::int64_t total = 0;
};

/// Writes `checkpoint` durably (tmp file, fsync, rename). Returns false --
/// without throwing -- when the write fails: a checkpoint is an
/// optimisation, and a pass that cannot checkpoint degrades to a plain
/// uninterruptible pass rather than failing verification.
bool writeStreamCheckpoint(const std::string& path,
                           const StreamCheckpoint& checkpoint);

/// Loads a checkpoint; nullopt when the file is absent, truncated, has a
/// bad magic/version or fails its checksum. Fingerprint matching is the
/// caller's decision.
std::optional<StreamCheckpoint> loadStreamCheckpoint(const std::string& path);

/// Removes a checkpoint file (best-effort; absent is fine).
void removeStreamCheckpoint(const std::string& path);

// --- serial entry points (stream_verify.cpp) ------------------------------
// The GridLcl overloads require dims() == 2 files; the GridLclD overloads
// require the file and problem dimensions to match. Both throw
// std::invalid_argument on a dims or sigma mismatch. Semantics equal the
// in-core engine: compiled table (bit-sliced where selected) when every
// label is in range, functional fallback otherwise; verify early-exits at
// the first violating slab, countViolations scans everything.

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLcl& lcl,
                                   const StreamWindow& window = {});
bool streamVerify(const StreamLabelling& file, const GridLcl& lcl,
                  const StreamWindow& window = {});

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLclD& lcl,
                                   const StreamWindow& window = {});
bool streamVerify(const StreamLabelling& file, const GridLclD& lcl,
                  const StreamWindow& window = {});

// --- threaded overloads (src/engine/parallel_verifier.cpp) ----------------
// Each slab is sharded across the pool with the same chunk-ordered combine
// as the in-core sharded verifier, so counts are bit-identical to the
// serial streaming pass (and to the in-core engine) at every thread count.

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLcl& lcl,
                                   const engine::EngineOptions& options,
                                   const StreamWindow& window = {});
bool streamVerify(const StreamLabelling& file, const GridLcl& lcl,
                  const engine::EngineOptions& options,
                  const StreamWindow& window = {});

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLclD& lcl,
                                   const engine::EngineOptions& options,
                                   const StreamWindow& window = {});
bool streamVerify(const StreamLabelling& file, const GridLclD& lcl,
                  const engine::EngineOptions& options,
                  const StreamWindow& window = {});

/// The slab-walking machinery, shared by the serial entry points and the
/// engine's sharded overloads so the two cannot diverge. Not stable API.
namespace stream_verify_detail {

/// Rows per slab: the explicit request, else ~8 MiB of payload, clamped to
/// [1, lines].
long long resolveWindowRows(int n, long long lines, long long requested);

/// The wrap window: rows pinned resident at the front of the payload (the
/// final rows' cyclic neighbours), and the lookahead the validation
/// frontier keeps ahead of the kernel. 1 row for dims <= 2; n^(dims-2)
/// rows (one outermost-axis block) for d >= 3, where the farthest
/// neighbour line of the table kernel lives.
long long wrapWindowRows(int dims, int n);

/// One streaming pass, parameterised over how a slab executes (the serial
/// driver runs the verifier_detail slices inline; the sharded driver runs
/// them through the pool). tablePath == false skips validation and runs
/// functionalRows only; an out-of-range row on the table path restarts the
/// whole pass on functionalRows, mirroring the in-core fallback.
struct StreamPass {
  const StreamLabelling* file = nullptr;
  long long window = 1;
  long long wrapKeep = 1;
  bool dropBehind = true;
  bool tablePath = false;
  /// True iff every label of rows [rowBegin, rowEnd) is in [0, sigma).
  std::function<bool(long long rowBegin, long long rowEnd)> rowsInRange;
  /// Table/bit-sliced violations of rows [rowBegin, rowEnd).
  std::function<std::int64_t(long long rowBegin, long long rowEnd,
                             bool stopAtFirst)>
      kernelRows;
  /// Functional violations of rows [rowBegin, rowEnd).
  std::function<std::int64_t(long long rowBegin, long long rowEnd,
                             bool stopAtFirst)>
      functionalRows;
  /// Crash-safe resume (StreamWindow::checkpointPath): count passes load a
  /// fingerprint-matching checkpoint at entry, write one every
  /// checkpointEverySlabs slabs, and remove it on completion. Ignored for
  /// stopAtFirst passes.
  std::string checkpointPath;
  long long checkpointEverySlabs = 1;
  std::uint64_t labellingFingerprint = 0;
  std::uint64_t problemFingerprint = 0;
};

/// Copies a window's checkpoint configuration onto a pass, binding the
/// labelling fingerprint (computed only when checkpointing is on) and the
/// problem fingerprint. Shared by the serial and sharded drivers.
void applyCheckpointConfig(StreamPass& pass, const StreamLabelling& file,
                           const StreamWindow& window,
                           std::uint64_t problemFingerprint);

std::int64_t runStreamPass(const StreamPass& pass, bool stopAtFirst);

/// Kernel tier of a streaming table path, shared by the serial and sharded
/// drivers so thread counts cannot diverge. 2D mirrors the in-core
/// selection (verifier_detail::bitsliceSelected); d >= 3 stays on the
/// row-pointer kernel -- the staged d >= 3 bit-sliced path needs the whole
/// labelling transposed into plane buffers, which is exactly the full-grid
/// allocation streaming exists to avoid. (A d = 2 GridLclD delegates to
/// the 2D rolling kernel, which streams fine.)
bool streamUsesBitslice(const StreamLabelling& file, const GridLcl& lcl);
bool streamUsesBitsliceD(const StreamLabelling& file, const GridLclD& lcl);

/// Entry-point validation shared by the serial and threaded overloads:
/// dims/sigma mismatches throw std::invalid_argument; 2D additionally
/// requires the node count to fit Torus2D's int indexing.
void checkStream2D(const StreamLabelling& file, const GridLcl& lcl);
void checkStreamD(const StreamLabelling& file, const GridLclD& lcl);

}  // namespace stream_verify_detail

}  // namespace lclgrid
