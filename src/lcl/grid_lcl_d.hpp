// LCL problems on the oriented d-dimensional torus, in radius-1 cross form:
// feasibility of a labelling is the conjunction, over all nodes, of a
// predicate over the node's own label and the labels of its 2d neighbours
// (one per signed axis direction -- the orientation is part of the model,
// so the predicate may distinguish directions).
//
// This is the d-dimensional sibling of GridLcl (lcl/grid_lcl.hpp): the
// constructor predicate is an ergonomic front end only, compiled eagerly
// into an LclTableD (for dims == 2 that table delegates to an ordinary
// LclTable, so the 2D representation stays the proven one). Alphabets
// beyond the 64-label table limit, or dependent row spaces beyond the
// table's row cap, keep the functional path -- exactly the 2D contract.
//
// Neighbour slot convention (shared with LclTableD and TorusD): slot 2a is
// the neighbour at +1 along axis a, slot 2a+1 at -1.
//
// Thread-safety contract: a constructed GridLclD is immutable apart from
// setLabelNames, so const queries may run concurrently from engine pool
// threads. Constructor predicates must be re-entrant (pure functions of
// their arguments); setLabelNames must happen-before sharing across
// threads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lcl/lcl_table_d.hpp"

namespace lclgrid {

class GridLclD {
 public:
  /// nbrs has 2*dims entries in the slot order above.
  using Predicate = std::function<bool(int c, std::span<const int> nbrs)>;

  GridLclD(std::string name, int dims, int sigma, std::uint32_t deps,
           Predicate ok);
  /// Table-first construction (combinators compose tables directly); the
  /// predicate() accessor is backed by table lookups.
  GridLclD(std::string name, LclTableD table);

  const std::string& name() const { return name_; }
  int dims() const { return dims_; }
  int sigma() const { return sigma_; }
  std::uint32_t deps() const { return deps_; }

  /// Single constraint query. In-range arguments on a compiled problem are
  /// one indexed load and a bit test; out-of-range arguments (or an
  /// uncompiled problem) fall back to the raw predicate, preserving the
  /// predicate's own semantics for garbage labels.
  bool allows(int c, std::span<const int> nbrs) const {
    if (table_ && inRange(c)) {
      bool ranged = true;
      for (int nbr : nbrs) {
        if (!inRange(nbr)) {
          ranged = false;
          break;
        }
      }
      if (ranged) return table_->allows(c, nbrs);
    }
    return ok_(c, nbrs);
  }

  /// True iff the problem compiled to a table (every problem with sigma
  /// and dependent row space within the table caps).
  bool hasTable() const { return table_ != nullptr; }
  /// The compiled table; throws std::logic_error when hasTable() is false.
  const LclTableD& table() const;
  /// The original constructor predicate (the reference implementation for
  /// uncompiled problems and the property tests).
  const Predicate& predicate() const { return ok_; }

  /// Optional human-readable label names (size sigma if set).
  void setLabelNames(std::vector<std::string> names);
  std::string labelName(int label) const;

  /// True iff the constant labelling with some single label is feasible.
  bool hasTrivialSolution() const { return trivialLabel() >= 0; }
  /// The trivial label if one exists, otherwise -1.
  int trivialLabel() const;

 private:
  bool inRange(int label) const {
    return static_cast<unsigned>(label) < static_cast<unsigned>(sigma_);
  }

  std::string name_;
  int dims_;
  int sigma_;
  std::uint32_t deps_;
  Predicate ok_;
  std::shared_ptr<const LclTableD> table_;  // shared: copies stay cheap
  std::vector<std::string> labelNames_;
};

namespace problems_d {

/// Proper vertex colouring with `colours` labels on the d-dimensional
/// torus: the centre differs from all 2d neighbours. The d-dimensional
/// generalisation of problems::vertexColouring, used by the throughput
/// bench and the property tests.
GridLclD vertexColouring(int dims, int colours);

/// Neighbourhood parity: the centre label equals the XOR of the low bits
/// of its 2d neighbours (sigma = 2). Depends on every slot and is not
/// edge-decomposable for dims >= 1 -- a deliberately table-hostile
/// workload exercising full-width rows.
GridLclD xorParity(int dims);

/// Monotone slices along `axis`: labels must be non-decreasing mod sigma
/// in the +axis direction (c -> c or c+1). Depends on two slots only, so
/// the compiled rows exercise zero-stride squeezing at every dimension.
GridLclD monotoneAxis(int dims, int axis, int sigma);

}  // namespace problems_d

}  // namespace lclgrid
