#include "lcl/lcl_table_d.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lclgrid {

namespace {

// Slot indices of the 2-dimensional torus (axis 0 = x, axis 1 = y).
constexpr int kSlotEast = 0;   // +x
constexpr int kSlotWest = 1;   // -x
constexpr int kSlotNorth = 2;  // +y
constexpr int kSlotSouth = 3;  // -y

/// 2D DepBit mask of a d = 2 slot mask (and back); the two conventions
/// name the same four directions.
std::uint8_t depsTo2d(std::uint32_t deps) {
  std::uint8_t out = 0;
  if (deps & (1u << kSlotNorth)) out |= kTableDepN;
  if (deps & (1u << kSlotEast)) out |= kTableDepE;
  if (deps & (1u << kSlotSouth)) out |= kTableDepS;
  if (deps & (1u << kSlotWest)) out |= kTableDepW;
  return out;
}

std::uint32_t depsFrom2d(std::uint8_t deps) {
  std::uint32_t out = 0;
  if (deps & kTableDepN) out |= 1u << kSlotNorth;
  if (deps & kTableDepE) out |= 1u << kSlotEast;
  if (deps & kTableDepS) out |= 1u << kSlotSouth;
  if (deps & kTableDepW) out |= 1u << kSlotWest;
  return out;
}

std::uint64_t fnvMix(std::uint64_t hash, std::uint64_t word) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (8 * byte)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint32_t LclTableD::fullDeps(int dims) {
  if (dims < 1 || dims > kMaxDims) {
    throw std::invalid_argument("LclTableD: dims out of range");
  }
  // Shift in 64 bits: at dims == kMaxDims == 16 a 32-bit shift by 2*dims
  // would be the full type width (undefined behaviour).
  return static_cast<std::uint32_t>((std::uint64_t{1} << (2 * dims)) - 1);
}

bool LclTableD::compilable(int dims, int sigma, std::uint32_t deps) {
  if (dims < 1 || dims > kMaxDims) return false;
  if (sigma < 1 || sigma > kMaxSigma) return false;
  if (deps & ~fullDeps(dims)) return false;
  std::size_t rows = 1;
  for (int slot = 0; slot < 2 * dims; ++slot) {
    if (!((deps >> slot) & 1u)) continue;
    if (rows > kMaxRows / static_cast<std::size_t>(sigma)) return false;
    rows *= static_cast<std::size_t>(sigma);
  }
  return rows <= kMaxRows;
}

LclTableD::LclTableD(int dims, int sigma, std::uint32_t deps)
    : dims_(dims), sigma_(sigma), deps_(deps) {
  if (!compilable(dims, sigma, deps)) {
    throw std::invalid_argument("LclTableD: relation too large to compile");
  }
  fullRow_ = sigma == 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << sigma) - 1;
  slotStrides_.assign(static_cast<std::size_t>(2 * dims), 0);
  std::size_t stride = 1;
  // Highest slot index innermost; slotOrder_ lists dependent slots with
  // ascending stride so the odometer walks rows in storage order.
  for (int slot = 2 * dims - 1; slot >= 0; --slot) {
    if (!slotRelevant(slot)) continue;
    slotStrides_[static_cast<std::size_t>(slot)] = stride;
    stride *= static_cast<std::size_t>(sigma);
    slotOrder_.push_back(slot);
  }
  rowsOwned_.assign(stride, 0);
}

LclTableD::LclTableD(std::shared_ptr<const LclTable> table2d,
                     std::uint32_t deps)
    : dims_(2),
      sigma_(table2d->sigma()),
      deps_(deps),
      fullRow_(table2d->fullRow()),
      table2d_(std::move(table2d)) {
  slotStrides_ = {table2d_->strideE(), table2d_->strideW(),
                  table2d_->strideN(), table2d_->strideS()};
  for (int slot = 0; slot < 4; ++slot) {
    if (slotRelevant(slot)) slotOrder_.push_back(slot);
  }
  std::sort(slotOrder_.begin(), slotOrder_.end(), [&](int a, int b) {
    return slotStrides_[static_cast<std::size_t>(a)] <
           slotStrides_[static_cast<std::size_t>(b)];
  });
  // Derived data delegates to the 2D table; the pair grids are copied into
  // the axis-indexed layout so pairOk() has one representation.
  trivialLabel_ = table2d_->trivialLabel();
  edgeDecomposable_ = table2d_->edgeDecomposable();
  const int s = sigma_;
  pairs_.assign(static_cast<std::size_t>(2) * s * s, 0);
  for (int lo = 0; lo < s; ++lo) {
    for (int up = 0; up < s; ++up) {
      const std::size_t at = static_cast<std::size_t>(lo) * s + up;
      pairs_[at] = table2d_->horizontalOk(lo, up) ? 1 : 0;
      pairs_[static_cast<std::size_t>(s) * s + at] =
          table2d_->verticalOk(lo, up) ? 1 : 0;
    }
  }
  std::uint64_t hash = 1469598103934665603ULL;
  hash = fnvMix(hash, static_cast<std::uint64_t>(dims_));
  hash = fnvMix(hash, static_cast<std::uint64_t>(sigma_));
  hash = fnvMix(hash, static_cast<std::uint64_t>(deps_));
  const std::uint64_t* rows = table2d_->rowData();
  for (std::size_t i = 0; i < table2d_->rowCount(); ++i) {
    hash = fnvMix(hash, rows[i]);
  }
  fingerprint_ = hash;
}

void LclTableD::advanceOdometer(std::vector<int>& nbrs) const {
  for (int slot : slotOrder_) {
    int& digit = nbrs[static_cast<std::size_t>(slot)];
    if (++digit < sigma_) return;
    digit = 0;
  }
}

LclTableD LclTableD::compile(int dims, int sigma, std::uint32_t deps,
                             const Predicate& ok) {
  if (!ok) {
    throw std::invalid_argument("LclTableD::compile: missing predicate");
  }
  if (!compilable(dims, sigma, deps)) {
    throw std::invalid_argument("LclTableD: relation too large to compile");
  }
  if (dims == 2) {
    // Delegate: compile an ordinary 2D table from the same relation so the
    // d = 2 representation is the existing one, bit for bit.
    auto table = std::make_shared<LclTable>(LclTable::compile(
        sigma, depsTo2d(deps), [&](int c, int n, int e, int s, int w) {
          const int nbrs[4] = {e, w, n, s};
          return ok(c, std::span<const int>(nbrs, 4));
        }));
    return LclTableD(std::move(table), deps);
  }
  LclTableD table(dims, sigma, deps);
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  const std::span<const int> view(nbrs);
  // The odometer enumerates rows in storage order (see visitRows), so the
  // loop counter is the row index; same in disjointUnion and remap.
  for (std::size_t index = 0; index < table.rowsOwned_.size(); ++index) {
    std::uint64_t row = 0;
    for (int c = 0; c < sigma; ++c) {
      if (ok(c, view)) row |= std::uint64_t{1} << c;
    }
    table.rowsOwned_[index] = row;
    table.advanceOdometer(nbrs);
  }
  table.finalise();
  return table;
}

LclTableD LclTableD::fromTable2D(LclTable table) {
  const std::uint32_t deps = depsFrom2d(table.deps());
  return LclTableD(std::make_shared<LclTable>(std::move(table)), deps);
}

LclTableD LclTableD::disjointUnion(const LclTableD& p, const LclTableD& q) {
  if (p.dims_ != q.dims_) {
    throw std::invalid_argument(
        "LclTableD::disjointUnion: dimension mismatch");
  }
  if (p.dims_ == 2) {
    return fromTable2D(LclTable::disjointUnion(*p.table2d_, *q.table2d_));
  }
  const int dims = p.dims_;
  const int sigmaP = p.sigma_;
  const int sigma = sigmaP + q.sigma_;
  LclTableD table(dims, sigma, fullDeps(dims));
  auto family = [sigmaP](int label) { return label < sigmaP; };
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::vector<int> sub(static_cast<std::size_t>(2 * dims), 0);
  for (std::size_t index = 0; index < table.rowsOwned_.size(); ++index) {
    const bool inP = family(nbrs[0]);
    bool consistent = true;
    for (int slot = 1; slot < 2 * dims; ++slot) {
      if (family(nbrs[static_cast<std::size_t>(slot)]) != inP) {
        consistent = false;
        break;
      }
    }
    std::uint64_t row = 0;
    if (consistent) {
      for (int slot = 0; slot < 2 * dims; ++slot) {
        sub[static_cast<std::size_t>(slot)] =
            nbrs[static_cast<std::size_t>(slot)] - (inP ? 0 : sigmaP);
      }
      row = inP ? p.centreMask(sub.data())
                : q.centreMask(sub.data()) << sigmaP;
    }
    table.rowsOwned_[index] = row;
    table.advanceOdometer(nbrs);
  }
  table.finalise();
  return table;
}

LclTableD LclTableD::remap(const LclTableD& p, std::span<const int> toOld) {
  const int sigma = static_cast<int>(toOld.size());
  for (int old : toOld) {
    if (old < 0 || old >= p.sigma_) {
      throw std::invalid_argument("LclTableD::remap: label out of range");
    }
  }
  if (p.dims_ == 2) {
    return fromTable2D(LclTable::remap(*p.table2d_, toOld));
  }
  const int dims = p.dims_;
  LclTableD table(dims, sigma, p.deps_);
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::vector<int> old(static_cast<std::size_t>(2 * dims), 0);
  for (std::size_t index = 0; index < table.rowsOwned_.size(); ++index) {
    for (int slot = 0; slot < 2 * dims; ++slot) {
      old[static_cast<std::size_t>(slot)] =
          toOld[static_cast<std::size_t>(nbrs[static_cast<std::size_t>(slot)])];
    }
    const std::uint64_t oldRow = p.centreMask(old.data());
    std::uint64_t row = 0;
    for (int c = 0; c < sigma; ++c) {
      row |= ((oldRow >> toOld[static_cast<std::size_t>(c)]) &
              std::uint64_t{1})
             << c;
    }
    table.rowsOwned_[index] = row;
    table.advanceOdometer(nbrs);
  }
  table.finalise();
  return table;
}

long long LclTableD::forbiddenRowCount() const {
  long long forbidden = 0;
  const std::uint64_t* rows = rowData();
  const std::size_t count = rowCount();
  for (std::size_t i = 0; i < count; ++i) {
    forbidden += sigma_ - std::popcount(rows[i] & fullRow_);
  }
  return forbidden;
}

bool LclTableD::sameContent(const LclTableD& other) const {
  if (dims_ != other.dims_ || sigma_ != other.sigma_ ||
      deps_ != other.deps_ || rowCount() != other.rowCount()) {
    return false;
  }
  const std::uint64_t* a = rowData();
  const std::uint64_t* b = other.rowData();
  return std::equal(a, a + rowCount(), b);
}

bool LclTableD::pairOk(int axis, int lower, int upper) const {
  return pairs_[(static_cast<std::size_t>(axis) * sigma_ + lower) * sigma_ +
                upper] != 0;
}

void LclTableD::finalise() {
  const int s = sigma_;
  const int d = dims_;

  std::uint64_t hash = 1469598103934665603ULL;
  hash = fnvMix(hash, static_cast<std::uint64_t>(dims_));
  hash = fnvMix(hash, static_cast<std::uint64_t>(sigma_));
  hash = fnvMix(hash, static_cast<std::uint64_t>(deps_));
  for (std::uint64_t row : rowsOwned_) hash = fnvMix(hash, row);
  fingerprint_ = hash;

  trivialLabel_ = -1;
  std::vector<int> constant(static_cast<std::size_t>(2 * d), 0);
  for (int c = 0; c < s; ++c) {
    std::fill(constant.begin(), constant.end(), c);
    if (allows(c, constant)) {
      trivialLabel_ = c;
      break;
    }
  }

  // Maximal candidate pair projections per axis, exactly as the 2D table:
  // a pair participates if it occurs in some allowed neighbourhood, viewed
  // from either of the two nodes it touches; slots outside the dependency
  // mask occur with every value in allowed neighbourhoods, so they are
  // expanded in bulk after the row sweep.
  pairs_.assign(static_cast<std::size_t>(d) * s * s, 0);
  std::vector<std::uint8_t> occurs(static_cast<std::size_t>(s), 0);
  auto pairAt = [&](int axis, int lower, int upper) -> std::uint8_t& {
    return pairs_[(static_cast<std::size_t>(axis) * s + lower) * s + upper];
  };
  visitRows([&](std::uint64_t row, std::span<const int> nbrs) {
    if (row == 0) return;
    for (int c = 0; c < s; ++c) {
      if (!((row >> c) & 1u)) continue;
      occurs[static_cast<std::size_t>(c)] = 1;
      for (int a = 0; a < d; ++a) {
        if (slotRelevant(2 * a)) pairAt(a, c, nbrs[2 * a]) = 1;
        if (slotRelevant(2 * a + 1)) pairAt(a, nbrs[2 * a + 1], c) = 1;
      }
    }
  });
  for (int c = 0; c < s; ++c) {
    if (!occurs[static_cast<std::size_t>(c)]) continue;
    for (int other = 0; other < s; ++other) {
      for (int a = 0; a < d; ++a) {
        if (!slotRelevant(2 * a)) pairAt(a, c, other) = 1;
        if (!slotRelevant(2 * a + 1)) pairAt(a, other, c) = 1;
      }
    }
  }

  // Decomposability: the per-axis pair projections reproduce the relation
  // exactly. Per dependent slot the candidate-centre mask is read off the
  // pair grid; irrelevant slots contribute the same mask (all occurring
  // labels) for every value, so one sweep over the stored rows covers the
  // whole sigma^(2d) neighbourhood space without enumerating it.
  std::vector<std::uint64_t> toUpper(static_cast<std::size_t>(d) * s, 0);
  std::vector<std::uint64_t> fromLower(static_cast<std::size_t>(d) * s, 0);
  for (int a = 0; a < d; ++a) {
    for (int label = 0; label < s; ++label) {
      for (int c = 0; c < s; ++c) {
        if (pairAt(a, c, label)) {
          toUpper[static_cast<std::size_t>(a) * s + label] |=
              std::uint64_t{1} << c;
        }
        if (pairAt(a, label, c)) {
          fromLower[static_cast<std::size_t>(a) * s + label] |=
              std::uint64_t{1} << c;
        }
      }
    }
  }
  std::uint64_t occursMask = 0;
  for (int c = 0; c < s; ++c) {
    if (occurs[static_cast<std::size_t>(c)]) occursMask |= std::uint64_t{1} << c;
  }
  const bool anyIrrelevant = deps_ != fullDeps(d);
  edgeDecomposable_ = true;
  visitRows([&](std::uint64_t row, std::span<const int> nbrs) {
    if (!edgeDecomposable_) return;
    std::uint64_t byPairs = anyIrrelevant ? occursMask : fullRow_;
    for (int a = 0; a < d; ++a) {
      if (slotRelevant(2 * a)) {
        byPairs &= toUpper[static_cast<std::size_t>(a) * s + nbrs[2 * a]];
      }
      if (slotRelevant(2 * a + 1)) {
        byPairs &=
            fromLower[static_cast<std::size_t>(a) * s + nbrs[2 * a + 1]];
      }
    }
    if (byPairs != row) edgeDecomposable_ = false;
  });

  // Bit-sliced evaluation plan: per-axis pair networks, exact precisely
  // when the relation is edge-decomposable (the d-dimensional sibling of
  // the 2D kPairPlanes plan; d = 2 delegated tables never run finalise and
  // reach the 2D plan via as2d() instead). Synthesis gives up when any
  // axis's pair sets are too dense to beat the line-pointer kernel.
  bitslicePlanD_.reset();
  if (edgeDecomposable_ && s <= 8) {
    auto plan = std::make_shared<bitslice::BitslicePlanD>();
    plan->planes = bitslice::planeCount(s);
    plan->axes.reserve(static_cast<std::size_t>(d));
    bool small = true;
    for (int a = 0; a < d && small; ++a) {
      plan->axes.push_back(bitslice::compilePairNetwork(
          s, [&](int lower, int upper) { return pairOk(a, lower, upper); }));
      small = static_cast<int>(plan->axes.back().terms.size()) <=
              bitslice::kMaxPairTerms;
    }
    if (small) bitslicePlanD_ = std::move(plan);
  }
}

}  // namespace lclgrid
