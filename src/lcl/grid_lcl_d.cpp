#include "lcl/grid_lcl_d.hpp"

#include <stdexcept>
#include <utility>

namespace lclgrid {

GridLclD::GridLclD(std::string name, int dims, int sigma, std::uint32_t deps,
                   Predicate ok)
    : name_(std::move(name)),
      dims_(dims),
      sigma_(sigma),
      deps_(deps),
      ok_(std::move(ok)) {
  if (dims < 1) throw std::invalid_argument("GridLclD: dims must be positive");
  if (sigma < 1) {
    throw std::invalid_argument("GridLclD: alphabet must be non-empty");
  }
  if (!ok_) throw std::invalid_argument("GridLclD: missing predicate");
  if (LclTableD::compilable(dims, sigma, deps)) {
    table_ = std::make_shared<const LclTableD>(
        LclTableD::compile(dims, sigma, deps, ok_));
  }
}

GridLclD::GridLclD(std::string name, LclTableD table)
    : name_(std::move(name)),
      dims_(table.dims()),
      sigma_(table.sigma()),
      deps_(table.deps()),
      table_(std::make_shared<const LclTableD>(std::move(table))) {
  // Out-of-range labels must be rejected before indexing the table -- the
  // verifier's fallback path feeds garbage labels through the predicate
  // (same guard as the 2D table-first constructor).
  ok_ = [t = table_](int c, std::span<const int> nbrs) {
    auto in = [&t](int label) {
      return static_cast<unsigned>(label) <
             static_cast<unsigned>(t->sigma());
    };
    if (!in(c)) return false;
    for (int nbr : nbrs) {
      if (!in(nbr)) return false;
    }
    return t->allows(c, nbrs);
  };
}

const LclTableD& GridLclD::table() const {
  if (!table_) throw std::logic_error("GridLclD: problem is not compiled");
  return *table_;
}

void GridLclD::setLabelNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != sigma_) {
    throw std::invalid_argument("GridLclD: label name count != sigma");
  }
  labelNames_ = std::move(names);
}

std::string GridLclD::labelName(int label) const {
  if (label >= 0 && label < static_cast<int>(labelNames_.size())) {
    return labelNames_[static_cast<std::size_t>(label)];
  }
  return std::to_string(label);
}

int GridLclD::trivialLabel() const {
  if (table_) return table_->trivialLabel();
  std::vector<int> constant(static_cast<std::size_t>(2 * dims_), 0);
  for (int c = 0; c < sigma_; ++c) {
    std::fill(constant.begin(), constant.end(), c);
    if (ok_(c, constant)) return c;
  }
  return -1;
}

namespace problems_d {

GridLclD vertexColouring(int dims, int colours) {
  if (colours < 1) {
    throw std::invalid_argument("vertexColouring: colours must be positive");
  }
  GridLclD lcl("vertex-colouring-" + std::to_string(colours) + "-d" +
                   std::to_string(dims),
               dims, colours, LclTableD::fullDeps(dims),
               [](int c, std::span<const int> nbrs) {
                 for (int nbr : nbrs) {
                   if (nbr == c) return false;
                 }
                 return true;
               });
  return lcl;
}

GridLclD xorParity(int dims) {
  return GridLclD("xor-parity-d" + std::to_string(dims), dims, 2,
                  LclTableD::fullDeps(dims),
                  [](int c, std::span<const int> nbrs) {
                    int parity = 0;
                    for (int nbr : nbrs) parity ^= nbr & 1;
                    return c == parity;
                  });
}

GridLclD monotoneAxis(int dims, int axis, int sigma) {
  if (axis < 0 || axis >= dims) {
    throw std::invalid_argument("monotoneAxis: axis out of range");
  }
  if (sigma < 2) {
    throw std::invalid_argument("monotoneAxis: sigma must be >= 2");
  }
  const std::uint32_t deps =
      (std::uint32_t{1} << (2 * axis)) | (std::uint32_t{1} << (2 * axis + 1));
  const int pos = 2 * axis;
  const int neg = 2 * axis + 1;
  return GridLclD(
      "monotone-axis" + std::to_string(axis) + "-d" + std::to_string(dims),
      dims, sigma, deps, [sigma, pos, neg](int c, std::span<const int> nbrs) {
        auto follows = [sigma](int a, int b) {
          return b == a || b == (a + 1) % sigma;
        };
        return follows(c, nbrs[pos]) && follows(nbrs[neg], c);
      });
}

}  // namespace problems_d

}  // namespace lclgrid
